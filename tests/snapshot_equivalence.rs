//! The serving layer must be invisible in the numbers: a snapshot minted
//! at the final settlement answers *byte-identically* to the end-of-run
//! model — across networks, schemes, coordinator shapes (single-thread
//! and sharded K = 1, 2, 4), transports (in-process channels and Unix
//! domain sockets), the decayed tracker, and the synchronous simulator.
//! Mid-stream snapshots are epoch-consistent cuts: whole events only for
//! the exact scheme, inside the Lemma 4 band for randomized schemes, with
//! monotone publish sequences. Companion to `tests/sharded_equivalence.rs`
//! (which pins the write path this read path snapshots).

use dsbn::bayes::{sprinkler_network, BayesianNetwork, NetworkSpec};
use dsbn::core::{
    build_tracker, run_cluster_tracker, run_decayed_cluster_tracker, AnyTracker, CounterLayout,
    CptEvaluator, EpochDecayConfig, Scheme, SnapshotHub, SnapshotServer, TrackerConfig,
};
use dsbn::datagen::TrainingStream;
use dsbn::monitor::CounterSnapshot;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Pace a stream so settlements are spread over wall time: sleep briefly
/// at every `boundary` crossing, giving a polling observer time to catch
/// mid-stream publishes. Purely a scheduling aid — the event sequence is
/// unchanged.
fn paced(
    events: impl Iterator<Item = Vec<usize>>,
    boundary: usize,
) -> impl Iterator<Item = Vec<usize>> {
    events.enumerate().map(move |(i, x)| {
        if i > 0 && i % boundary == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        x
    })
}

fn net_by_name(name: &str) -> BayesianNetwork {
    match name {
        "sprinkler" => sprinkler_network(),
        "alarm" => NetworkSpec::alarm().generate(1).expect("alarm generation"),
        other => panic!("unknown net {other}"),
    }
}

/// Assert the server answers byte-identically to the finished model on a
/// seeded query batch (log-queries, classification, posteriors).
fn assert_server_matches_model(
    tag: &str,
    net: &BayesianNetwork,
    server: &SnapshotServer,
    log_query: impl Fn(&[usize]) -> f64,
    classify: impl Fn(usize, &mut [usize]) -> usize,
) {
    for x in TrainingStream::new(net, 77).take(25) {
        assert_eq!(
            server.log_query(&x).to_bits(),
            log_query(&x).to_bits(),
            "{tag}: served log-query drifted from the end-of-run model"
        );
    }
    for target in 0..net.n_vars() {
        let mut a: Vec<usize> = TrainingStream::new(net, 78).next().unwrap();
        let mut b = a.clone();
        assert_eq!(
            server.classify(target, &mut a),
            classify(target, &mut b),
            "{tag}: served classification drifted"
        );
    }
}

/// The core acceptance anchor: every (network, scheme, coordinator shape)
/// leaves the server byte-identical to the `ClusterModel` the run returned
/// — with no epochs configured, the final snapshot's open counts *are* the
/// report estimates verbatim.
#[test]
fn final_snapshot_serves_the_end_of_run_model_bitwise() {
    for (net_name, m) in [("sprinkler", 4_000usize), ("alarm", 1_200)] {
        let net = net_by_name(net_name);
        for scheme in Scheme::ALL {
            for workers in [1usize, 2, 4] {
                let hub = SnapshotHub::new();
                let tc = TrackerConfig::new(scheme)
                    .with_k(4)
                    .with_seed(3)
                    .with_chunk(64)
                    .with_coord_workers(workers)
                    .with_publish(hub.clone());
                let server = SnapshotServer::new(&net, tc.smoothing, hub.clone());
                let run = run_cluster_tracker(&net, &tc, TrainingStream::new(&net, 17).take(m))
                    .expect("cluster run failed");
                let tag = format!("{net_name}/{}/workers {workers}", scheme.name());
                assert_eq!(hub.seq(), 1, "{tag}: exactly one (final) publish");
                let snap = server.snapshot();
                assert!(snap.finalized, "{tag}");
                assert_eq!(snap.events, m as u64, "{tag}");
                assert_server_matches_model(
                    &tag,
                    &net,
                    &server,
                    |x| run.model.log_query(x),
                    |t, x| run.model.classify(t, x),
                );
            }
        }
    }
}

/// With epoch settlements enabled the final cumulative reads are
/// `settled + open` — still byte-identical to the end-of-run model, and
/// the publish sequence counts every settlement plus the final flush.
#[test]
fn final_snapshot_with_epochs_is_bitwise_and_seq_counts_settlements() {
    let net = sprinkler_network();
    let m = 6_000usize;
    for scheme in Scheme::ALL {
        for workers in [1usize, 2] {
            let hub = SnapshotHub::new();
            let tc = TrackerConfig::new(scheme)
                .with_k(3)
                .with_seed(9)
                .with_chunk(32)
                .with_coord_workers(workers)
                .with_snapshot_every(1_000)
                .with_publish(hub.clone());
            let server = SnapshotServer::new(&net, tc.smoothing, hub.clone());
            let run = run_cluster_tracker(&net, &tc, TrainingStream::new(&net, 17).take(m))
                .expect("cluster run failed");
            let tag = format!("{}/workers {workers}", scheme.name());
            assert!(run.report.epochs > 0, "{tag}: settlements must have happened");
            assert_eq!(hub.seq(), run.report.epochs + 1, "{tag}: one publish per settlement");
            let snap = hub.load();
            assert!(snap.finalized, "{tag}");
            assert_eq!(snap.exact.as_deref(), Some(run.report.exact_totals.as_slice()), "{tag}");
            assert_server_matches_model(
                &tag,
                &net,
                &server,
                |x| run.model.log_query(x),
                |t, x| run.model.classify(t, x),
            );
        }
    }
}

/// Poll a hub while a run is in flight, collecting every distinct publish
/// the poller manages to observe (ArcSwap keeps only the latest, so this
/// is a sample of the settlements, not necessarily all of them).
fn collect_snapshots(hub: &SnapshotHub, stop: &AtomicBool) -> Vec<Arc<CounterSnapshot>> {
    let mut seen = Vec::new();
    let mut last = 0u64;
    loop {
        let done = stop.load(Ordering::Acquire);
        let snap = hub.load();
        if snap.seq != last {
            last = snap.seq;
            seen.push(snap);
        }
        if done {
            return seen;
        }
        std::thread::yield_now();
    }
}

/// Mid-stream snapshots under the exact scheme are whole-event cuts:
/// mints happen only between packets at settlements, and packets carry
/// whole events, so for every variable the family counts sum exactly to
/// their parent count — in every observed snapshot, not just the final
/// one. Sequences ascend, closed-epoch counts track the sequence, and the
/// exact oracle rides only the final snapshot.
#[test]
fn exact_mid_stream_snapshots_are_whole_event_cuts() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    let every = 500u64;
    let m = 20_000usize;
    for workers in [1usize, 2] {
        let hub = SnapshotHub::new();
        let tc = TrackerConfig::new(Scheme::ExactMle)
            .with_k(3)
            .with_seed(5)
            .with_chunk(32)
            .with_coord_workers(workers)
            .with_snapshot_every(every)
            .with_publish(hub.clone());
        let stop = AtomicBool::new(false);
        let (run, seen) = std::thread::scope(|scope| {
            let poller = scope.spawn(|| collect_snapshots(&hub, &stop));
            let events = paced(TrainingStream::new(&net, 13).take(m), every as usize);
            let run = run_cluster_tracker(&net, &tc, events).expect("cluster run failed");
            stop.store(true, Ordering::Release);
            (run, poller.join().expect("poller panicked"))
        });
        let tag = format!("workers {workers}");
        assert!(seen.len() >= 3, "{tag}: poller observed only {} snapshots", seen.len());
        let mut last_seq = 0u64;
        for snap in &seen {
            assert!(snap.seq > last_seq, "{tag}: publish sequence must ascend");
            last_seq = snap.seq;
            if snap.finalized {
                assert_eq!(snap.seq, run.report.epochs + 1, "{tag}");
                assert_eq!(snap.events, m as u64, "{tag}");
                assert!(snap.exact.is_some(), "{tag}: final snapshot carries the oracle");
            } else {
                assert_eq!(snap.epochs, snap.seq, "{tag}: one settlement per publish");
                assert_eq!(snap.events, snap.epochs * every, "{tag}");
                assert!(snap.exact.is_none(), "{tag}: no oracle before the flush");
            }
            for i in 0..layout.n_vars() {
                for u in 0..layout.parent_configs(i) {
                    let family: f64 = (0..layout.cardinality(i))
                        .map(|v| snap.cumulative(layout.family_id(i, v, u) as usize))
                        .sum();
                    let parent = snap.cumulative(layout.parent_id(i, u) as usize);
                    assert_eq!(
                        family, parent,
                        "{tag}: seq {} cut variable {i} config {u} mid-event",
                        snap.seq
                    );
                }
            }
        }
        assert!(seen.last().unwrap().finalized, "{tag}: final publish observed");
    }
}

/// Mid-stream snapshots under a randomized scheme split cleanly along the
/// settlement line: the *settled* component is exact (epoch settlements
/// ship each site's exact per-epoch counts, whatever the scheme), so its
/// family sums, parent counts, and cross-variable totals agree exactly —
/// while the *open* component is a live Lemma 4 estimate, pinned only to
/// be finite, non-negative, and to serve finite probabilities. A
/// single-instance HYZ counter misses its `eps` band with constant
/// probability (that is what Theorem 1's median amplification is for), so
/// nothing sharper is a sound assertion here.
#[test]
fn randomized_mid_stream_snapshots_stay_in_the_eps_band() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    let eps = 0.1;
    let hub = SnapshotHub::new();
    let tc = TrackerConfig::new(Scheme::Uniform)
        .with_k(5)
        .with_eps(eps)
        .with_seed(1)
        .with_chunk(32)
        .with_snapshot_every(1_000)
        .with_publish(hub.clone());
    let server = SnapshotServer::new(&net, tc.smoothing, hub.clone());
    let stop = AtomicBool::new(false);
    let m = 30_000usize;
    let (_run, seen, served) = std::thread::scope(|scope| {
        let poller = scope.spawn(|| collect_snapshots(&hub, &stop));
        // A live reader: every mid-stream answer must be a usable
        // probability, never NaN/inf, no matter which settlement it lands
        // on.
        let reader = scope.spawn(|| {
            let queries: Vec<Vec<usize>> = TrainingStream::new(&net, 3).take(64).collect();
            let mut served = 0u64;
            let mut i = 0usize;
            loop {
                let logp = server.log_query(&queries[i % queries.len()]);
                assert!(logp.is_finite(), "mid-stream answer not finite");
                assert!(logp <= 0.0, "mid-stream answer not a probability");
                served += 1;
                i += 1;
                if stop.load(Ordering::Acquire) {
                    return served;
                }
            }
        });
        let events = paced(TrainingStream::new(&net, 23).take(m), 1_000);
        let run = run_cluster_tracker(&net, &tc, events).expect("cluster run failed");
        stop.store(true, Ordering::Release);
        (run, poller.join().expect("poller panicked"), reader.join().expect("reader panicked"))
    });
    assert!(served > 0);
    assert!(seen.len() >= 3, "poller observed only {} snapshots", seen.len());
    for snap in seen.iter().filter(|s| !s.finalized) {
        // Settled component: exact whole-event counts, scheme-independent.
        let settled_totals: Vec<f64> = (0..layout.n_vars())
            .map(|i| {
                (0..layout.parent_configs(i))
                    .map(|u| {
                        let p = layout.parent_id(i, u) as usize;
                        let family: f64 = (0..layout.cardinality(i))
                            .map(|v| snap.settled[layout.family_id(i, v, u) as usize])
                            .sum();
                        assert_eq!(
                            family, snap.settled[p],
                            "seq {}: settled cut variable {i} config {u} mid-event",
                            snap.seq
                        );
                        snap.settled[p]
                    })
                    .sum()
            })
            .collect();
        assert!(settled_totals[0] > 0.0, "seq {}: empty settlement published", snap.seq);
        for (i, &t) in settled_totals.iter().enumerate() {
            assert_eq!(
                t, settled_totals[0],
                "seq {}: settled totals disagree across variables ({i})",
                snap.seq
            );
        }
        // Open component: a live randomized estimate — sane, not exact.
        for c in 0..layout.n_counters() {
            let open = snap.open[c];
            assert!(open.is_finite() && open >= 0.0, "seq {}: bad open read {open}", snap.seq);
            assert!(snap.cumulative(c) >= snap.settled[c], "seq {}", snap.seq);
        }
    }
}

/// The decayed tracker's settlements serve the same way: a server resolving
/// with the run's `lambda` answers byte-identically to the returned
/// `DecayedClusterModel` (the resolve loop is the `EpochRing::decayed`
/// arithmetic, term for term).
#[test]
fn decayed_final_snapshot_matches_the_decayed_model_bitwise() {
    let net = sprinkler_network();
    let decay = EpochDecayConfig::new(0.8, 500, 6);
    for scheme in [Scheme::ExactMle, Scheme::NonUniform] {
        for workers in [1usize, 2] {
            let hub = SnapshotHub::new();
            let tc = TrackerConfig::new(scheme)
                .with_k(3)
                .with_eps(0.1)
                .with_seed(7)
                .with_chunk(32)
                .with_coord_workers(workers)
                .with_publish(hub.clone());
            let server = SnapshotServer::with_decay(&net, tc.smoothing, hub.clone(), decay.lambda);
            let run = run_decayed_cluster_tracker(
                &net,
                &tc,
                &decay,
                TrainingStream::new(&net, 29).take(8_000),
            )
            .expect("decayed cluster run failed");
            let tag = format!("decayed {}/workers {workers}", scheme.name());
            assert!(run.report.epochs > 0, "{tag}");
            assert_eq!(hub.seq(), run.report.epochs + 1, "{tag}");
            assert_server_matches_model(
                &tag,
                &net,
                &server,
                |x| run.model.log_query(x),
                |t, x| run.model.classify(t, x),
            );
        }
    }
}

/// The simulator freezes the same way: `BnTracker::snapshot()` is a
/// sequence-zero, finalized `CptSnapshot` whose evaluator answers
/// byte-identically to the live tracker, for every scheme's protocol.
#[test]
fn sim_tracker_snapshot_is_bitwise_frozen_for_every_scheme() {
    let net = sprinkler_network();
    for scheme in Scheme::ALL {
        let mut t = build_tracker(&net, &TrackerConfig::new(scheme).with_k(4).with_seed(2));
        t.train(TrainingStream::new(&net, 21), 10_000);
        let (snap, layout, smoothing) = match &t {
            AnyTracker::Exact(t) => (t.snapshot(), t.layout(), t.smoothing()),
            AnyTracker::Randomized(t) => (t.snapshot(), t.layout(), t.smoothing()),
            AnyTracker::Deterministic(t) => (t.snapshot(), t.layout(), t.smoothing()),
        };
        assert_eq!(snap.events, 10_000, "{}", scheme.name());
        assert!(snap.finalized && snap.exact.is_some(), "{}", scheme.name());
        let eval = CptEvaluator::new(&net, layout, &snap, smoothing);
        for x in TrainingStream::new(&net, 22).take(50) {
            assert_eq!(
                eval.log_query(&x).to_bits(),
                t.log_query(&x).to_bits(),
                "{}: frozen simulator answers drifted",
                scheme.name()
            );
        }
    }
}

/// Snapshots are transport-invariant: the raw exact pipeline over Unix
/// domain sockets publishes a final snapshot byte-identical to the one the
/// in-process channel transport publishes, for both coordinator shapes.
#[cfg(unix)]
#[test]
fn uds_final_snapshot_matches_channels_bit_for_bit() {
    use dsbn::counters::ExactProtocol;
    use dsbn::monitor::{run_cluster_on, ChannelTransport, ClusterConfig, UdsTransport};

    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    let protocols = vec![ExactProtocol; layout.n_counters()];
    let m = 5_000u64;
    for workers in [0usize, 2] {
        let run = |uds: bool| -> Arc<CounterSnapshot> {
            let hub = SnapshotHub::new();
            let mut config = ClusterConfig::new(3, 11)
                .with_chunk(32)
                .with_epochs(500, 8)
                .with_publish(hub.clone());
            if workers > 0 {
                config =
                    config.with_sharded_coordinator(workers, Some(layout.shard_starts(workers)));
            }
            let events = TrainingStream::new(&net, 7).chunks(32, m);
            let report = if uds {
                run_cluster_on(&UdsTransport, &protocols, &config, events, |chunk, ids| {
                    layout.map_chunk(chunk, ids)
                })
            } else {
                run_cluster_on(&ChannelTransport, &protocols, &config, events, |chunk, ids| {
                    layout.map_chunk(chunk, ids)
                })
            }
            .expect("cluster run failed");
            let snap = hub.load();
            assert!(snap.finalized);
            assert_eq!(snap.events, report.events);
            assert_eq!(snap.exact.as_deref(), Some(report.exact_totals.as_slice()));
            for c in 0..layout.n_counters() {
                assert_eq!(
                    snap.cumulative(c).to_bits(),
                    (report.settled_totals[c] + report.estimates[c]).to_bits(),
                    "cumulative reads must be settled + open"
                );
            }
            snap
        };
        let chan = run(false);
        let uds = run(true);
        let tag = format!("workers {workers}");
        assert_eq!(uds.seq, chan.seq, "{tag}");
        assert_eq!(uds.events, chan.events, "{tag}");
        assert_eq!(uds.epochs, chan.epochs, "{tag}");
        // The settled/open *split* is timing-dependent — which events a
        // site had ingested when a roll reached it varies with delivery
        // timing, on either transport — but the cumulative count per
        // counter is a property of the event multiset: bit-identical.
        for c in 0..layout.n_counters() {
            assert_eq!(
                uds.cumulative(c).to_bits(),
                chan.cumulative(c).to_bits(),
                "{tag} counter {c}"
            );
        }
        assert_eq!(uds.exact, chan.exact, "{tag}");
    }
}
