//! The sharded coordinator must be indistinguishable from the
//! single-thread coordinator it parallelizes: under a shared seed the
//! sharded runs (K = 1, 2, 4) produce *bit-identical* estimates, exact
//! totals, paper-convention message counts, and wire bytes — for the raw
//! counter runtime and for the full tracker (whose shard plan follows the
//! `CounterLayout` block boundaries). The same pinning runs over the
//! Unix-domain-socket transport, whose envelope overhead is deliberately
//! excluded from accounting, so every figure is transport-invariant.
//! Mirrors `tests/chunked_equivalence.rs`, which pins the ingest batching
//! this PR builds on.

use dsbn::bayes::{sprinkler_network, BayesianNetwork, NetworkSpec};
use dsbn::core::{run_cluster_tracker, CounterLayout, Scheme, TrackerConfig};
use dsbn::counters::ExactProtocol;
use dsbn::datagen::TrainingStream;
#[cfg(unix)]
use dsbn::monitor::UdsTransport;
use dsbn::monitor::{
    run_cluster, run_cluster_on, ChannelTransport, ClusterConfig, ClusterError, ClusterReport,
    LinkClosed, Transport, UpPacket, UpSender,
};

fn net_by_name(name: &str) -> BayesianNetwork {
    match name {
        "sprinkler" => sprinkler_network(),
        "alarm" => NetworkSpec::alarm().generate(1).expect("alarm generation"),
        other => panic!("unknown net {other}"),
    }
}

/// Raw counter runtime with exact counters (every figure deterministic
/// under threading): sharded K = 1, 2, 4 vs the single-thread coordinator.
fn assert_sharded_equals_single_thread(net_name: &str, m: u64) {
    let net = net_by_name(net_name);
    let layout = CounterLayout::new(&net);
    let protocols = vec![ExactProtocol; layout.n_counters()];
    let run = |config: ClusterConfig| {
        let events = TrainingStream::new(&net, 7).chunks(32, m);
        run_cluster(&protocols, &config, events, |chunk, ids| layout.map_chunk(chunk, ids))
            .expect("cluster run failed")
    };
    let single = run(ClusterConfig::new(4, 11).with_chunk(32));
    assert_eq!(single.events, m);
    for workers in [1usize, 2, 4] {
        // Both shard plans: the layout's block-aligned starts (what the
        // tracker uses) and the even default.
        let starts = layout.shard_starts(workers);
        for plan in [Some(starts), None] {
            let sharded = run(ClusterConfig::new(4, 11)
                .with_chunk(32)
                .with_sharded_coordinator(workers, plan.clone()));
            let tag = format!("{net_name} workers {workers} plan {:?}", plan.is_some());
            assert_eq!(sharded.events, m, "{tag}");
            assert_eq!(sharded.estimates, single.estimates, "{tag}");
            assert_eq!(sharded.exact_totals, single.exact_totals, "{tag}");
            assert_eq!(sharded.stats.up_messages, single.stats.up_messages, "{tag}");
            assert_eq!(sharded.stats.down_messages, single.stats.down_messages, "{tag}");
            assert_eq!(sharded.stats.broadcasts, single.stats.broadcasts, "{tag}");
            assert_eq!(sharded.stats.bytes, single.stats.bytes, "{tag}");
            assert_eq!(sharded.stats.packets, single.stats.packets, "{tag}");
        }
    }
}

#[test]
fn sharded_coordinator_is_bit_identical_sprinkler() {
    assert_sharded_equals_single_thread("sprinkler", 10_000);
}

#[test]
fn sharded_coordinator_is_bit_identical_alarm() {
    assert_sharded_equals_single_thread("alarm", 2_000);
}

/// The full tracker through `run_cluster_tracker` with
/// `TrackerConfig::with_coord_workers`: the exact scheme stays bit-for-bit
/// across coordinator shapes (the shard plan cuts on the layout's
/// per-variable block boundaries).
#[test]
fn sharded_tracker_is_bit_identical_to_single_thread() {
    let net = net_by_name("alarm");
    let m = 3_000usize;
    let run = |workers: usize| {
        let tc = TrackerConfig::new(Scheme::ExactMle)
            .with_k(4)
            .with_seed(3)
            .with_chunk(64)
            .with_coord_workers(workers);
        run_cluster_tracker(&net, &tc, TrainingStream::new(&net, 17).take(m))
            .expect("cluster run failed")
    };
    let single = run(1);
    let layout = single.model.layout().clone();
    for workers in [2usize, 4] {
        let sharded = run(workers);
        assert_eq!(sharded.report.events, m as u64, "workers {workers}");
        for c in 0..layout.n_counters() {
            assert_eq!(
                sharded.model.exact_total(c),
                single.model.exact_total(c),
                "workers {workers}: counter {c} totals"
            );
        }
        for i in 0..layout.n_vars() {
            for u in 0..layout.parent_configs(i) {
                for v in 0..layout.cardinality(i) {
                    let (num, den) = sharded.model.counter_pair(i, v, u);
                    let (sn, sd) = single.model.counter_pair(i, v, u);
                    assert_eq!(num.to_bits(), sn.to_bits(), "workers {workers}: ({i},{v},{u})");
                    assert_eq!(den.to_bits(), sd.to_bits(), "workers {workers}: ({i},{u})");
                }
            }
        }
        assert_eq!(sharded.report.stats, single.report.stats, "workers {workers}: stats");
    }
}

/// Randomized schemes are interleaving-dependent, so the sharded tracker is
/// pinned statistically: exact totals match the event stream and the
/// Definition 2 band holds against the same-stream exact MLE.
#[test]
fn sharded_randomized_tracker_stays_in_band() {
    let net = sprinkler_network();
    let m = 40_000usize;
    let eps = 0.1;
    for workers in [2usize, 4] {
        let tc = TrackerConfig::new(Scheme::NonUniform)
            .with_k(5)
            .with_eps(eps)
            .with_seed(1)
            .with_chunk(64)
            .with_coord_workers(workers);
        let run = run_cluster_tracker(&net, &tc, TrainingStream::new(&net, 23).take(m))
            .expect("cluster run failed");
        assert_eq!(run.report.events, m as u64);
        assert!(run.report.stats.total() < 2 * 4 * m as u64, "workers {workers}: not sublinear");
        for x in TrainingStream::new(&net, 7).take(50) {
            let gap = (run.model.log_query(&x) - run.model.exact_log_query(&x)).abs();
            assert!(gap < 3.0 * eps, "workers {workers}: query band violated: {gap}");
        }
    }
}

/// Run the raw exact pipeline over a transport and return the report.
#[cfg(unix)]
fn run_exact_on<T: Transport>(
    transport: &T,
    net: &BayesianNetwork,
    layout: &CounterLayout,
    config: &ClusterConfig,
    m: u64,
) -> ClusterReport {
    let protocols = vec![ExactProtocol; layout.n_counters()];
    let events = TrainingStream::new(net, 7).chunks(32, m);
    run_cluster_on(transport, &protocols, config, events, |chunk, ids| layout.map_chunk(chunk, ids))
        .expect("cluster run failed")
}

/// The Unix-domain-socket transport runs the identical protocol: every
/// accounted figure (estimates, totals, logical messages, packets, *and
/// bytes* — envelopes are excluded by design) matches the in-process
/// channel transport, for both coordinator shapes.
#[cfg(unix)]
#[test]
fn uds_transport_matches_channels_bit_for_bit() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    let m = 5_000u64;
    for workers in [0usize, 2] {
        // workers = 0 => single-thread coordinator.
        let mut config = ClusterConfig::new(3, 11).with_chunk(32);
        if workers > 0 {
            config = config.with_sharded_coordinator(workers, Some(layout.shard_starts(workers)));
        }
        let chan = run_exact_on(&ChannelTransport, &net, &layout, &config, m);
        let uds = run_exact_on(&UdsTransport, &net, &layout, &config, m);
        let tag = format!("workers {workers}");
        assert_eq!(uds.events, chan.events, "{tag}");
        assert_eq!(uds.estimates, chan.estimates, "{tag}");
        assert_eq!(uds.exact_totals, chan.exact_totals, "{tag}");
        assert_eq!(uds.stats.up_messages, chan.stats.up_messages, "{tag}");
        assert_eq!(uds.stats.down_messages, chan.stats.down_messages, "{tag}");
        assert_eq!(uds.stats.bytes, chan.stats.bytes, "{tag}: envelope bytes must not leak");
        assert_eq!(uds.stats.packets, chan.stats.packets, "{tag}");
    }
}

/// A transport whose up links truncate the last byte of every update
/// payload: proves third-party `Transport` impls slot in, and that a
/// corrupted link surfaces as a typed error from `run_cluster_on` instead
/// of a panic or a hang.
struct TruncatingTransport;

struct TruncatingUp(<ChannelTransport as Transport>::UpTx);

impl UpSender for TruncatingUp {
    fn send(&mut self, pkt: UpPacket) -> Result<(), LinkClosed> {
        let pkt = match pkt {
            UpPacket::Updates { site, payload } if !payload.is_empty() => {
                let cut = payload.slice(0..payload.len() - 1);
                UpPacket::Updates { site, payload: cut }
            }
            other => other,
        };
        UpSender::send(&mut self.0, pkt)
    }
}

impl Transport for TruncatingTransport {
    type UpTx = TruncatingUp;
    type DownTx = <ChannelTransport as Transport>::DownTx;

    fn connect(
        &self,
        k: usize,
        capacity: usize,
    ) -> Result<dsbn::monitor::Fabric<Self::UpTx, Self::DownTx>, ClusterError> {
        let fabric = ChannelTransport.connect(k, capacity)?;
        Ok(dsbn::monitor::Fabric {
            site_ups: fabric.site_ups.into_iter().map(TruncatingUp).collect(),
            driver_up: fabric.driver_up,
            coord_rx: fabric.coord_rx,
            coord_downs: fabric.coord_downs,
            site_downs: fabric.site_downs,
            pumps: fabric.pumps,
        })
    }
}

#[test]
fn corrupting_transport_fails_the_run_with_a_typed_error() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    let protocols = vec![ExactProtocol; layout.n_counters()];
    let events = TrainingStream::new(&net, 7).chunks(16, 1_000);
    let err = run_cluster_on(
        &TruncatingTransport,
        &protocols,
        &ClusterConfig::new(3, 11).with_chunk(16),
        events,
        |chunk, ids| layout.map_chunk(chunk, ids),
    )
    .unwrap_err();
    match err {
        ClusterError::Wire { source: dsbn::counters::wire::WireError::Truncated, .. } => {}
        other => panic!("expected a truncated-wire error, got {other:?}"),
    }
}

/// Epoch rolling composes with the sharded coordinator. Per-epoch
/// *boundaries* are interleaving-dependent (a roll broadcast races queued
/// events, so where an event lands is timing — the legacy epoch suite pins
/// this), but every deterministic figure must match the single-thread run,
/// every closed epoch must settle exactly against its own oracle, and the
/// ring drop count must be reported, not silent.
#[test]
fn sharded_epoch_rolls_match_single_thread() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    let protocols = vec![ExactProtocol; layout.n_counters()];
    let run = |config: ClusterConfig| {
        let events = TrainingStream::new(&net, 5).chunks(16, 6_000);
        run_cluster(&protocols, &config, events, |chunk, ids| layout.map_chunk(chunk, ids))
            .expect("cluster run failed")
    };
    let single = run(ClusterConfig::new(3, 9).with_chunk(16).with_epochs(1_000, 4));
    assert_eq!(single.epochs, 6);
    assert_eq!(single.dropped_epochs, 2, "6 closed epochs in a ring of 4");
    let sharded = run(ClusterConfig::new(3, 9)
        .with_chunk(16)
        .with_epochs(1_000, 4)
        .with_sharded_coordinator(2, Some(layout.shard_starts(2))));
    assert_eq!(sharded.epochs, single.epochs);
    assert_eq!(sharded.dropped_epochs, single.dropped_epochs);
    // Cumulative totals are stream properties, independent of epoch
    // attribution and coordinator shape.
    assert_eq!(sharded.exact_totals, single.exact_totals);
    // Closed epochs settle exactly against this run's own oracle, and the
    // retained windows line up with it.
    assert_eq!(sharded.epoch_estimates.len(), 4);
    for (est, exact) in sharded.epoch_estimates.iter().zip(&sharded.epoch_exact_totals) {
        for (e, &t) in est.iter().zip(exact) {
            assert_eq!(*e, t as f64, "sharded closed epoch drifted from its oracle");
        }
    }
    // The final estimates cover the open epoch and agree with its oracle.
    for (e, &t) in sharded.estimates.iter().zip(&sharded.open_epoch_exact_totals) {
        assert_eq!(*e, t as f64);
    }
}
