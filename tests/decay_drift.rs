//! The epoch-ring decay suite: degenerate-case regressions pinning the
//! decayed trackers to their undecayed counterparts, and drift-scenario
//! band tests pinning the distributed decayed models to the centralized
//! exact epoch-decayed MLE over the same stream.

use dsbn::bayes::{sprinkler_network, NetworkSpec};
use dsbn::core::{
    build_decayed_tracker, build_tracker, run_decayed_cluster_tracker, DecayConfig, DecayedMle,
    EpochDecayConfig, Scheme, Smoothing, TrackerConfig,
};
use dsbn::datagen::{DriftWorkload, TrainingStream};
use dsbn_bayes::classify::CpdSource;

/// Satellite: decay disabled (`lambda = 1`, `K = 1`, no boundary) must be
/// *bit-for-bit* the plain tracker — same RNG consumption, same routing,
/// same estimates, same bytes — for every scheme, across networks and
/// seeds.
#[test]
fn disabled_decay_matches_bn_tracker_bit_for_bit() {
    for (net, m) in
        [(sprinkler_network(), 6_000usize), (NetworkSpec::alarm().generate(1).unwrap(), 2_000)]
    {
        for seed in [1u64, 9] {
            for scheme in [Scheme::ExactMle, Scheme::NonUniform] {
                let tc = TrackerConfig::new(scheme).with_k(4).with_eps(0.1).with_seed(seed);
                let mut plain = build_tracker(&net, &tc);
                let mut decayed = build_decayed_tracker(&net, &tc, &EpochDecayConfig::disabled());
                plain.train(TrainingStream::new(&net, seed), m as u64);
                decayed.train(TrainingStream::new(&net, seed), m as u64);
                assert_eq!(plain.events(), decayed.events());
                assert_eq!(decayed.epochs(), 0);
                // Identical message/byte accounting (no rolls ever happen).
                assert_eq!(plain.stats(), decayed.stats(), "{} seed {seed}", scheme.name());
                // Identical conditional probabilities, to the bit.
                for i in 0..net.n_vars() {
                    for u in 0..net.parent_configs(i) {
                        for v in 0..net.cardinality(i) {
                            assert_eq!(
                                plain.cond_prob(i, v, u).to_bits(),
                                decayed.cond_prob(i, v, u).to_bits(),
                                "{} seed {seed}: cpd ({i},{v},{u})",
                                scheme.name()
                            );
                        }
                    }
                }
                // Identical queries, to the bit.
                for x in TrainingStream::new(&net, seed ^ 0xfeed).take(20) {
                    assert_eq!(
                        plain.log_query(&x).to_bits(),
                        decayed.log_query(&x).to_bits(),
                        "{} seed {seed}",
                        scheme.name()
                    );
                }
            }
        }
    }
}

/// Satellite: `DecayedMle` with `lambda = 1` is the plain MLE — pinned
/// against the exact tracker's raw Algorithm-3 ratios across networks and
/// seeds (counts are integers below 2^53, so equality is exact).
#[test]
fn decayed_mle_lambda_one_is_plain_mle_across_networks() {
    for (net, m) in
        [(sprinkler_network(), 8_000usize), (NetworkSpec::alarm().generate(2).unwrap(), 3_000)]
    {
        for seed in [3u64, 17] {
            let mut mle =
                DecayedMle::new(&net, DecayConfig { lambda: 1.0, smoothing: Smoothing::None });
            let tc = TrackerConfig::new(Scheme::ExactMle)
                .with_k(3)
                .with_seed(seed)
                .with_smoothing(Smoothing::None);
            let mut exact = build_tracker(&net, &tc);
            for x in TrainingStream::new(&net, seed).take(m) {
                mle.observe(&x);
                exact.observe(&x);
            }
            for i in 0..net.n_vars() {
                for u in 0..net.parent_configs(i) {
                    for v in 0..net.cardinality(i) {
                        assert_eq!(
                            mle.cond_prob(i, v, u).to_bits(),
                            exact.cond_prob(i, v, u).to_bits(),
                            "net {} seed {seed}: cpd ({i},{v},{u})",
                            net.name()
                        );
                    }
                }
            }
        }
    }
}

/// Acceptance: on a drift stream, the distributed decayed tracker's
/// log-queries stay within the per-epoch `e^{±eps}` band of the exact
/// epoch-decayed MLE over the same stream (each ring entry is a Lemma-4
/// estimate of the matching exact epoch count, so the decayed sums inherit
/// the band), across a seed sweep.
#[test]
fn sim_decayed_tracker_stays_in_band_of_exact_decayed_mle_under_drift() {
    let eps = 0.1;
    let base = sprinkler_network();
    let workload = DriftWorkload::parameter_drift(&base, 2, 20_000, 0.8, 0.01, 5).unwrap();
    let m = workload.scripted_events();
    let decay = EpochDecayConfig::new(0.7, 4_000, 8);
    for seed in [1u64, 2, 3] {
        for scheme in [Scheme::Baseline, Scheme::Uniform, Scheme::NonUniform] {
            let tc = TrackerConfig::new(scheme).with_k(5).with_eps(eps).with_seed(seed);
            let mut t = build_decayed_tracker(&base, &tc, &decay);
            t.train(workload.stream(seed), m);
            assert_eq!(t.epochs(), m / decay.boundary);
            for q in TrainingStream::new(&base, seed ^ 0xabcd).take(40) {
                let gap = (t.log_query(&q) - t.exact_decayed_log_query(&q)).abs();
                assert!(
                    gap < 3.0 * eps,
                    "{} seed {seed}: decayed query band violated: {gap}",
                    scheme.name()
                );
            }
        }
    }
}

/// The epoch-granular decay tracks the per-event `DecayedMle` within the
/// derived discretization bound: per-event and per-epoch weights of any
/// event differ by at most a factor `lambda^{±1}`, so each factor of the
/// joint differs by at most `lambda^{±2}`, plus the protocol band and the
/// ring-truncation tail.
#[test]
fn epoch_decay_tracks_per_event_decayed_mle() {
    let eps = 0.1;
    let base = sprinkler_network();
    let workload = DriftWorkload::parameter_drift(&base, 2, 20_000, 0.8, 0.01, 11).unwrap();
    let m = workload.scripted_events();
    let decay = EpochDecayConfig::new(0.8, 4_000, 16);
    let smoothing = Smoothing::Pseudocount(0.5);
    let tc = TrackerConfig::new(Scheme::NonUniform)
        .with_k(5)
        .with_eps(eps)
        .with_seed(1)
        .with_smoothing(smoothing);
    let mut dist = build_decayed_tracker(&base, &tc, &decay);
    let mut central =
        DecayedMle::new(&base, DecayConfig { lambda: decay.per_event_lambda(), smoothing });
    for x in workload.stream(1).take(m as usize) {
        dist.observe(&x);
        central.observe(&x);
    }
    // Per-factor discretization bound: 2 * n * ln(1/lambda), plus protocol
    // band and truncation slack.
    let n = base.n_vars() as f64;
    let bound = 2.0 * n * (1.0 / decay.lambda).ln() + 3.0 * eps + 0.5;
    for q in TrainingStream::new(&base, 77).take(40) {
        let gap = (dist.log_query(&q) - central.log_query(&q)).abs();
        assert!(gap < bound, "epoch vs per-event decay diverged: {gap} (bound {bound})");
    }
}

/// Acceptance (cluster): the decayed tracker running live on the threaded
/// cluster stays within the same band of its exact epoch-decayed oracle on
/// a drift stream, and the epoch machinery's communication stays far below
/// forwarding every event (the cost of maintaining the centralized decayed
/// MLE remotely).
#[test]
fn cluster_decayed_tracker_band_and_sublinear_bytes_under_drift() {
    let eps = 0.1;
    let base = sprinkler_network();
    let workload = DriftWorkload::parameter_drift(&base, 2, 15_000, 0.8, 0.01, 9).unwrap();
    let m = workload.scripted_events() as usize;
    let decay = EpochDecayConfig::new(0.7, 5_000, 6);
    let tc = TrackerConfig::new(Scheme::NonUniform).with_k(5).with_eps(eps).with_seed(4);
    let run = run_decayed_cluster_tracker(&base, &tc, &decay, workload.stream(4).take(m))
        .expect("cluster run failed");
    assert_eq!(run.report.events, m as u64);
    assert_eq!(run.report.epochs, m as u64 / decay.boundary);
    // Slack: the decayed read sums K+1 frozen estimates per counter (vs 1
    // for the undecayed tracker), so the whp max deviation is larger, and
    // asynchronous delivery freezes epochs mid-round; 6 eps keeps the same
    // order as the 3-eps band the one-estimate suites pin.
    for q in TrainingStream::new(&base, 31).take(40) {
        let gap = (run.model.log_query(&q) - run.model.exact_decayed_log_query(&q)).abs();
        assert!(gap < 6.0 * eps, "cluster decayed query band violated: {gap}");
    }
    // Sublinear communication vs forwarding every event (the cost of
    // maintaining the centralized decayed MLE remotely). Epochs must be
    // long enough for the randomized rounds to leave the
    // report-every-arrival phase (a report costs 17 bytes vs 4 for a
    // batched increment, so byte savings lag message savings; the
    // release-scale margins live in `exp_ablation_decay`'s JSON). At
    // B = 15k, BASELINE budgets beat exact forwarding (2 n m messages,
    // Lemma 5) on both metrics. The byte comparison is pinned on the
    // deterministic simulator; the cluster's async overhead (stale-round
    // retries, catch-up reports) varies ±30% with thread interleaving,
    // so its message bound keeps a 2x margin.
    let decay_b = EpochDecayConfig::new(0.7, 15_000, 6);
    let tc_b = TrackerConfig::new(Scheme::Baseline).with_k(5).with_eps(0.2).with_seed(4);
    let tc_fwd = TrackerConfig::new(Scheme::ExactMle).with_k(5).with_seed(4);
    let mut sim_hyz = build_decayed_tracker(&base, &tc_b, &decay_b);
    let mut sim_fwd = build_decayed_tracker(&base, &tc_fwd, &decay_b);
    sim_hyz.train(workload.stream(4), m as u64);
    sim_fwd.train(workload.stream(4), m as u64);
    assert_eq!(sim_fwd.stats().total(), 2 * 4 * m as u64); // Lemma 5
    assert!(
        sim_hyz.stats().total() * 3 < sim_fwd.stats().total(),
        "decayed BASELINE messages {} not sublinear vs forwarding {}",
        sim_hyz.stats().total(),
        sim_fwd.stats().total()
    );
    assert!(
        sim_hyz.stats().bytes * 3 < sim_fwd.stats().bytes * 2,
        "decayed BASELINE bytes {} not below forwarding {}",
        sim_hyz.stats().bytes,
        sim_fwd.stats().bytes
    );
    let hyz = run_decayed_cluster_tracker(&base, &tc_b, &decay_b, workload.stream(4).take(m))
        .expect("cluster run failed");
    assert!(
        hyz.report.stats.total() * 2 < 2 * 4 * m as u64,
        "cluster decayed BASELINE messages {} not sublinear vs forwarding {}",
        hyz.report.stats.total(),
        2 * 4 * m
    );
}
