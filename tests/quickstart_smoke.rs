//! Smoke test mirroring `examples/quickstart.rs` so the example's flow can't
//! silently rot: build trackers, stream seeded training data, and check the
//! queried probability is finite and in range. Uses a shorter stream than
//! the example to stay fast; every API call the example makes is exercised.

use dsbn::bayes::sprinkler_network;
use dsbn::core::{build_tracker, Scheme, TrackerConfig};
use dsbn::datagen::TrainingStream;

#[test]
fn quickstart_flow_produces_sane_probabilities() {
    let net = sprinkler_network();

    let mut exact = build_tracker(&net, &TrackerConfig::new(Scheme::ExactMle).with_k(8));
    let mut nonuniform =
        build_tracker(&net, &TrackerConfig::new(Scheme::NonUniform).with_eps(0.1).with_k(8));

    let m = 20_000;
    exact.train(TrainingStream::new(&net, 7), m);
    nonuniform.train(TrainingStream::new(&net, 7), m);

    let event = [1, 0, 1, 1]; // cloudy, sprinkler off, rain, wet grass
    let truth = net.joint_prob(&event);
    assert!(truth > 0.0 && truth < 1.0);

    for (name, p) in [("exact", exact.query(&event)), ("nonuniform", nonuniform.query(&event))] {
        assert!(p.is_finite(), "{name} query returned a non-finite probability");
        assert!(p > 0.0 && p < 1.0, "{name} query {p} outside (0, 1)");
        // Both trackers saw 20k samples of the truth; they must be in the
        // right neighborhood, not just technically in range.
        assert!(
            (p - truth).abs() < 0.5 * truth + 0.05,
            "{name} query {p} far from ground truth {truth}"
        );
    }

    // The paper's headline: the approximate tracker communicates less.
    let me = exact.stats().total();
    let mn = nonuniform.stats().total();
    assert!(me > 0 && mn > 0);
    assert!(mn < me, "NONUNIFORM used {mn} messages, exact MLE {me}; expected fewer");

    // Classification returns a valid state index for the Rain variable.
    let mut evidence = [1, 0, 0, 1];
    let predicted = nonuniform.classify(2, &mut evidence);
    assert!(predicted < net.variable(2).states().len());
}
