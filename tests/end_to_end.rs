//! End-to-end integration tests asserting the paper's qualitative claims
//! at test-friendly scale, across all crates through the public facade.

use dsbn::bayes::{sprinkler_network, NetworkSpec};
use dsbn::core::{build_tracker, classification_error_rate, AnyTracker, Scheme, TrackerConfig};
use dsbn::datagen::{generate_classification_cases, generate_queries, QueryConfig, TrainingStream};

/// Train all four algorithms on the same ALARM stream and check the
/// paper's headline: approximate trackers answer queries close to the
/// exact MLE at a fraction of the communication (Figs. 5-6).
#[test]
fn paper_headline_accuracy_vs_communication() {
    let net = NetworkSpec::alarm().generate(3).unwrap();
    let m = 60_000u64;
    let k = 20;
    let mut trackers: Vec<(Scheme, AnyTracker)> = Scheme::ALL
        .iter()
        .map(|&s| {
            (s, build_tracker(&net, &TrackerConfig::new(s).with_eps(0.1).with_k(k).with_seed(5)))
        })
        .collect();
    let mut stream = TrainingStream::new(&net, 5);
    let mut event = Vec::new();
    for _ in 0..m {
        stream.next_into(&mut event);
        for (_, t) in trackers.iter_mut() {
            t.observe(&event);
        }
    }
    let queries = generate_queries(&net, &QueryConfig { n_queries: 300, ..Default::default() }, 9);
    let exact = &trackers[0].1;
    let exact_messages = exact.stats().total();
    assert_eq!(exact_messages, 2 * 37 * m, "Lemma 5 exact cost");
    for (scheme, t) in &trackers[1..] {
        // Approximation error to the MLE: mean relative error well under
        // control (the guarantee allows ~e^0.1 - 1 at 3/4 probability;
        // empirically it is far smaller, as in the paper's Fig. 5).
        let mean_err: f64 = queries
            .iter()
            .map(|q| ((t.log_query(q) - exact.log_query(q)).exp() - 1.0).abs())
            .sum::<f64>()
            / queries.len() as f64;
        assert!(mean_err < 0.11, "{}: mean error to MLE {mean_err}", scheme.name());
        // And cheaper than exact maintenance.
        assert!(
            t.stats().total() < exact_messages,
            "{}: messages {} vs exact {exact_messages}",
            scheme.name(),
            t.stats().total()
        );
    }
}

/// Classification (Tables II-III): approximate trackers classify about as
/// well as the exact MLE.
#[test]
fn classification_parity_with_exact_mle() {
    let net = NetworkSpec::alarm().generate(7).unwrap();
    let m = 30_000u64;
    let cases = generate_classification_cases(&net, 500, 13);
    let mut rates = Vec::new();
    for scheme in Scheme::ALL {
        let mut t =
            build_tracker(&net, &TrackerConfig::new(scheme).with_eps(0.1).with_k(10).with_seed(2));
        t.train(TrainingStream::new(&net, 2), m);
        rates.push((scheme, classification_error_rate(&net, &t, &cases)));
    }
    let exact_rate = rates[0].1;
    for &(scheme, rate) in &rates[1..] {
        assert!(
            (rate - exact_rate).abs() < 0.05,
            "{}: error rate {rate} vs exact {exact_rate}",
            scheme.name()
        );
    }
    // All models beat blind majority guessing by a wide margin.
    for &(scheme, rate) in &rates {
        assert!(rate < 0.5, "{}: error rate {rate}", scheme.name());
    }
}

/// Error to ground truth decays with more training data for every
/// algorithm (Figs. 1-3) while the error to the MLE stays roughly flat
/// (Figs. 4-5).
#[test]
fn statistical_error_decays_approximation_error_flat() {
    let net = sprinkler_network();
    let checkpoints = [2_000u64, 100_000];
    let mut exact = build_tracker(&net, &TrackerConfig::new(Scheme::ExactMle).with_k(6));
    let mut uni = build_tracker(
        &net,
        &TrackerConfig::new(Scheme::Uniform).with_eps(0.1).with_k(6).with_seed(11),
    );
    let queries = generate_queries(&net, &QueryConfig { n_queries: 300, ..Default::default() }, 5);
    let mut stream = TrainingStream::new(&net, 19);
    let mut event = Vec::new();
    let mut truth_errs = Vec::new();
    let mut mle_errs = Vec::new();
    let mut seen = 0u64;
    for &cp in &checkpoints {
        while seen < cp {
            stream.next_into(&mut event);
            exact.observe(&event);
            uni.observe(&event);
            seen += 1;
        }
        let t_err: f64 = queries
            .iter()
            .map(|q| ((uni.log_query(q) - net.joint_log_prob(q)).exp() - 1.0).abs())
            .sum::<f64>()
            / queries.len() as f64;
        let m_err: f64 = queries
            .iter()
            .map(|q| ((uni.log_query(q) - exact.log_query(q)).exp() - 1.0).abs())
            .sum::<f64>()
            / queries.len() as f64;
        truth_errs.push(t_err);
        mle_errs.push(m_err);
    }
    assert!(truth_errs[1] < 0.6 * truth_errs[0], "statistical error should shrink: {truth_errs:?}");
    // Approximation error does not grow without bound; it stays at the
    // eps scale (the paper: "remains approximately the same").
    assert!(mle_errs[1] < 0.11, "approximation error {mle_errs:?}");
}

/// NEW-ALARM claim (§VI-B): on unbalanced cardinalities NONUNIFORM beats
/// UNIFORM on communication by a clear margin — *once the stream is long
/// enough that the high-cardinality counters have left the exact-counting
/// phase* (count > sqrt(k)/nu). We use a small unbalanced network (one
/// variable inflated to 64 values) so that regime is reached quickly; on
/// NEW-ALARM itself the crossover needs multi-million-event streams under
/// strictly variance-faithful counters (see EXPERIMENTS.md).
#[test]
fn nonuniform_wins_on_unbalanced_domains() {
    use dsbn::bayes::generate::{inflate_domains, NetworkSpec};
    let spec = NetworkSpec {
        name: "unbal".into(),
        n_nodes: 8,
        n_edges: 8,
        max_parents: 2,
        base_cardinality: 2,
        max_cardinality: 2,
        target_parameters: 16,
        dirichlet_alpha: 0.8,
        min_cpd_entry: 0.01,
    };
    let net = inflate_domains(&spec, 3, 1, 64).unwrap();
    let m = 500_000u64;
    let mut uni = build_tracker(
        &net,
        &TrackerConfig::new(Scheme::Uniform).with_eps(0.4).with_k(5).with_seed(4),
    );
    let mut non = build_tracker(
        &net,
        &TrackerConfig::new(Scheme::NonUniform).with_eps(0.4).with_k(5).with_seed(4),
    );
    let mut stream = TrainingStream::new(&net, 4);
    let mut event = Vec::new();
    for _ in 0..m {
        stream.next_into(&mut event);
        uni.observe(&event);
        non.observe(&event);
    }
    let u = uni.stats().total();
    let n = non.stats().total();
    assert!(
        (n as f64) < 0.92 * u as f64,
        "NONUNIFORM {n} should clearly beat UNIFORM {u} on an unbalanced network"
    );
}

/// The full pipeline also works for a network loaded from BIF text.
#[test]
fn bif_to_tracker_pipeline() {
    let net = sprinkler_network();
    let text = dsbn::bayes::bif::write(&net);
    let parsed = dsbn::bayes::bif::parse(&text).unwrap();
    let mut t = build_tracker(
        &parsed,
        &TrackerConfig::new(Scheme::NonUniform).with_eps(0.2).with_k(4).with_seed(1),
    );
    t.train(TrainingStream::new(&parsed, 6), 20_000);
    let q = vec![1usize, 0, 1, 1];
    let rel = ((t.log_query(&q) - net.joint_log_prob(&q)).exp() - 1.0).abs();
    assert!(rel < 0.2, "relative error {rel}");
}
