//! The event-batched UPDATE pipeline must be indistinguishable from the
//! per-increment reference path it replaced: under a shared seed, the
//! batched tracker produces *bit-identical* coordinator estimates, exact
//! totals, and paper-convention message counts. Only the byte tally is
//! allowed to differ — downward — because batching exists precisely to
//! amortize per-frame overhead.
//!
//! The reference below replays the pre-refactor `BnTracker::observe`
//! verbatim: assign a site, map the event to its `2n` counter ids
//! (Algorithm 2), and drive `CounterArray::increment` once per id with the
//! same RNG.

use dsbn::bayes::{sprinkler_network, NetworkSpec};
use dsbn::core::{allocate, build_tracker, CounterLayout, Scheme, TrackerConfig};
use dsbn::counters::protocol::CounterProtocol;
use dsbn::counters::{ExactProtocol, HyzProtocol};
use dsbn::datagen::TrainingStream;
use dsbn::monitor::{run_cluster, ClusterConfig, CounterArray, Partitioner, SiteAssigner};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The pre-refactor per-increment UPDATE loop, preserved as a reference.
struct PerIncrementRef<P: CounterProtocol> {
    layout: CounterLayout,
    array: CounterArray<P>,
    assigner: SiteAssigner,
    rng: SmallRng,
    ids: Vec<u32>,
}

impl<P: CounterProtocol> PerIncrementRef<P> {
    fn new(layout: CounterLayout, protocols: Vec<P>, k: usize, seed: u64) -> Self {
        PerIncrementRef {
            layout,
            array: CounterArray::new(protocols, k),
            assigner: SiteAssigner::new(Partitioner::UniformRandom, k),
            rng: SmallRng::seed_from_u64(seed),
            ids: Vec::new(),
        }
    }

    fn observe(&mut self, x: &[usize]) {
        let site = self.assigner.assign(&mut self.rng);
        self.layout.map_event(x, &mut self.ids);
        for i in 0..self.ids.len() {
            self.array.increment(site, self.ids[i] as usize, &mut self.rng);
        }
    }
}

fn assert_batched_equals_reference(scheme: Scheme, net_name: &str, m: usize) {
    let net = match net_name {
        "sprinkler" => sprinkler_network(),
        "alarm" => NetworkSpec::alarm().generate(1).expect("alarm generation"),
        other => panic!("unknown net {other}"),
    };
    let layout = CounterLayout::new(&net);
    let (k, seed, eps) = (5, 23u64, 0.1);

    let tc = TrackerConfig::new(scheme).with_k(k).with_seed(seed).with_eps(eps);
    let mut batched = build_tracker(&net, &tc);
    batched.train(TrainingStream::new(&net, 3), m as u64);

    // Reference with the identical protocol vector, seed, and stream.
    match scheme {
        Scheme::ExactMle => {
            let mut reference = PerIncrementRef::new(
                layout.clone(),
                vec![ExactProtocol; layout.n_counters()],
                k,
                seed,
            );
            for x in TrainingStream::new(&net, 3).take(m) {
                reference.observe(&x);
            }
            compare(&batched, &reference.array, &layout);
        }
        scheme => {
            let alloc = allocate(scheme, &net, eps);
            let protocols: Vec<HyzProtocol> = layout
                .per_counter(&alloc.family_eps, &alloc.parent_eps)
                .into_iter()
                .map(HyzProtocol::new)
                .collect();
            let mut reference = PerIncrementRef::new(layout.clone(), protocols, k, seed);
            for x in TrainingStream::new(&net, 3).take(m) {
                reference.observe(&x);
            }
            compare(&batched, &reference.array, &layout);
        }
    }
}

fn compare<P: CounterProtocol>(
    batched: &dsbn::core::AnyTracker,
    reference: &CounterArray<P>,
    layout: &CounterLayout,
) {
    for i in 0..layout.n_vars() {
        for u in 0..layout.parent_configs(i) {
            let pid = layout.parent_id(i, u) as usize;
            assert_eq!(
                batched.exact_parent_count(i, u),
                reference.exact_total(pid),
                "parent total ({i},{u})"
            );
            for v in 0..layout.cardinality(i) {
                let fid = layout.family_id(i, v, u) as usize;
                assert_eq!(
                    batched.exact_family_count(i, v, u),
                    reference.exact_total(fid),
                    "family total ({i},{v},{u})"
                );
                // Estimates must be bit-identical, not merely close: the
                // batched pipeline consumes the RNG in exactly the same
                // order as the per-increment loop.
                let (num, den) = batched.counter_pair(i, v, u);
                assert_eq!(
                    num.to_bits(),
                    reference.estimate(fid).to_bits(),
                    "family estimate ({i},{v},{u})"
                );
                assert_eq!(
                    den.to_bits(),
                    reference.estimate(pid).to_bits(),
                    "parent estimate ({i},{u})"
                );
            }
        }
    }
    let (a, b) = (batched.stats(), reference.stats());
    assert_eq!(a.up_messages, b.up_messages, "up message count");
    assert_eq!(a.down_messages, b.down_messages, "down message count");
    assert_eq!(a.broadcasts, b.broadcasts, "broadcast count");
    // The batched path ships the same logical updates in fewer bytes.
    assert!(a.bytes <= b.bytes, "batched bytes {} > reference {}", a.bytes, b.bytes);
}

#[test]
fn exact_tracker_batched_update_is_bit_identical() {
    assert_batched_equals_reference(Scheme::ExactMle, "sprinkler", 20_000);
}

#[test]
fn randomized_trackers_batched_update_is_bit_identical() {
    for scheme in [Scheme::Baseline, Scheme::Uniform, Scheme::NonUniform] {
        assert_batched_equals_reference(scheme, "sprinkler", 20_000);
    }
}

#[test]
fn alarm_nonuniform_batched_update_is_bit_identical() {
    assert_batched_equals_reference(Scheme::NonUniform, "alarm", 5_000);
}

/// Cluster equivalence: with exact counters, the batched cluster pipeline
/// must reproduce the per-increment reference's counts exactly — same
/// estimates, totals, and paper-convention message counts — while shipping
/// strictly fewer wire bytes per event than unbatched 5-byte frames.
#[test]
fn cluster_batched_update_matches_per_increment_reference() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    let m = 10_000usize;
    let protocols = vec![ExactProtocol; layout.n_counters()];
    let events = TrainingStream::new(&net, 7).chunks(1, m as u64);
    let report = run_cluster(&protocols, &ClusterConfig::new(4, 11), events, |chunk, ids| {
        layout.map_chunk(chunk, ids)
    })
    .expect("cluster run failed");

    let mut reference =
        PerIncrementRef::new(layout.clone(), vec![ExactProtocol; layout.n_counters()], 4, 11);
    for x in TrainingStream::new(&net, 7).take(m) {
        reference.observe(&x);
    }

    for c in 0..layout.n_counters() {
        assert_eq!(report.estimates[c], reference.array.estimate(c), "estimate {c}");
        assert_eq!(report.exact_totals[c], reference.array.exact_total(c), "total {c}");
    }
    let (a, b) = (report.stats, reference.array.stats());
    assert_eq!(a.up_messages, b.up_messages);
    assert_eq!(a.down_messages, b.down_messages);
    assert_eq!(a.broadcasts, b.broadcasts);
    // 2n = 8 updates per event: UpBatch (5 + 8*4 = 37 bytes) vs 8 singles
    // (40 bytes) — one packet per event, fewer bytes than unbatched.
    assert_eq!(a.packets, m as u64);
    assert_eq!(a.bytes, (m * 37) as u64);
    assert!(a.bytes < a.up_messages * 5);
}
