//! Site crash/rejoin churn at the tracker level (DESIGN.md §8): the
//! full Algorithm 1–2 trackers running live on the threaded cluster with
//! injected faults.
//!
//! The contract: a crash forgets exactly what it wiped — for every
//! counter, the surviving total plus the churn ledger's lost count equals
//! the full-stream count bit-for-bit, for any scheme — and the
//! approximate schemes' `e^{±eps}` query band holds against the exact MLE
//! over the *surviving* counts (both sides of Definition 2 forget the
//! same wiped contributions), widened for the mid-round noise a crash or
//! rejoin injects.

use dsbn::bayes::{sprinkler_network, BayesianNetwork, NetworkSpec};
use dsbn::core::{
    build_tracker, run_cluster_tracker, run_decayed_cluster_tracker, ClusterTrackerRun,
    EpochDecayConfig, Scheme, TrackerConfig,
};
use dsbn::datagen::TrainingStream;
use dsbn::monitor::{Partitioner, SiteFault};

/// Run the tracker under `faults` and pin the reconciliation identity
/// against a fault-free synchronous simulator on the same stream: for
/// every family and parent counter, surviving + lost == full-stream.
fn assert_churn_reconciles(
    net: &BayesianNetwork,
    tc: &TrackerConfig,
    m: usize,
    stream_seed: u64,
) -> ClusterTrackerRun {
    let mut sim = build_tracker(net, tc); // the simulator ignores faults
    sim.train(TrainingStream::new(net, stream_seed), m as u64);
    let run = run_cluster_tracker(net, tc, TrainingStream::new(net, stream_seed).take(m))
        .expect("cluster run failed");
    assert_eq!(run.report.events, m as u64);
    let churn = &run.report.churn;
    let layout = run.model.layout();
    for i in 0..layout.n_vars() {
        for u in 0..layout.parent_configs(i) {
            let pid = layout.parent_id(i, u) as usize;
            assert_eq!(
                run.model.exact_total(pid) + churn.lost_counts[pid],
                sim.exact_parent_count(i, u),
                "{}: parent ({i},{u}) fails surviving + lost == full-stream",
                tc.scheme.name()
            );
            for v in 0..layout.cardinality(i) {
                let fid = layout.family_id(i, v, u) as usize;
                assert_eq!(
                    run.model.exact_total(fid) + churn.lost_counts[fid],
                    sim.exact_family_count(i, v, u),
                    "{}: family ({i},{v},{u}) fails surviving + lost == full-stream",
                    tc.scheme.name()
                );
            }
        }
    }
    run
}

/// Kill/revive mid-stream for every scheme: the identity holds bit for
/// bit, the churn section is populated, and the approximate schemes stay
/// inside a widened Definition-2 band against the surviving exact MLE.
fn assert_tracker_churn_on(net: &BayesianNetwork, m: usize, k: usize, seed: u64) {
    let eps = 0.1;
    let faults = SiteFault::schedule(k, m as u64, 2, seed);
    assert!(!faults.is_empty());
    let queries: Vec<Vec<usize>> = TrainingStream::new(net, seed ^ 0xabcd).take(40).collect();
    for scheme in [Scheme::ExactMle, Scheme::Baseline, Scheme::Uniform, Scheme::NonUniform] {
        let tc = TrackerConfig::new(scheme)
            .with_eps(eps)
            .with_k(k)
            .with_seed(seed)
            .with_faults(faults.clone());
        let run = assert_churn_reconciles(net, &tc, m, seed);
        let churn = &run.report.churn;
        assert!(churn.kills >= 1, "{}: no kill landed", scheme.name());
        assert!(churn.events_lost > 0, "{}: dead sites lost no arrivals", scheme.name());
        assert!(
            churn.lost_counts.iter().sum::<u64>() > 0,
            "{}: crashes wiped no counts",
            scheme.name()
        );
        for f in &faults {
            assert!(
                churn.site_downtime[f.site] > std::time::Duration::ZERO,
                "{}: site {} reports no downtime",
                scheme.name(),
                f.site
            );
        }
        match scheme {
            // EXACTMLE: the estimates equal the surviving totals exactly,
            // crash, rejoin, and torn packets notwithstanding.
            Scheme::ExactMle => {
                for (c, &est) in run.report.estimates.iter().enumerate() {
                    assert_eq!(est, run.report.exact_totals[c] as f64, "counter {c}");
                }
            }
            // Approximate schemes: Definition-2 band vs the exact MLE on
            // the surviving counts, widened (4x vs the fault-free 3x) for
            // the mid-round rounding a forget-and-rearm injects.
            _ => {
                for q in &queries {
                    let gap = (run.model.log_query(q) - run.model.exact_log_query(q)).abs();
                    assert!(gap < 4.0 * eps, "{}: churn query band violated: {gap}", scheme.name());
                }
            }
        }
    }
}

#[test]
fn tracker_churn_reconciles_on_sprinkler() {
    let net = sprinkler_network();
    assert_tracker_churn_on(&net, 60_000, 5, 9);
}

#[test]
fn tracker_churn_reconciles_on_sprinkler_seed_sweep() {
    let net = sprinkler_network();
    for seed in [2u64, 3, 4] {
        assert_tracker_churn_on(&net, 40_000, 4, seed);
    }
}

#[test]
fn tracker_churn_reconciles_on_alarm() {
    let net = NetworkSpec::alarm().generate(1).expect("alarm generation");
    assert_tracker_churn_on(&net, 30_000, 6, 4);
}

#[test]
fn skewed_and_bursty_arrivals_reconcile_under_churn() {
    // The skew regimes from dsbn_datagen::arrival: a hot site and a
    // near-idle one, and one site hammered in bursts — the arrival
    // patterns that make a crash wipe the most (and least) state.
    let net = sprinkler_network();
    let m = 30_000usize;
    for partitioner in [
        Partitioner::Skewed { hot: 0.6, cold: 0.01 },
        Partitioner::Bursty { period: 128, burst: 32 },
    ] {
        let tc = TrackerConfig::new(Scheme::NonUniform)
            .with_k(4)
            .with_seed(11)
            .with_partitioner(partitioner)
            .with_faults(vec![SiteFault { site: 0, kill_at: m as u64 / 3, revive_at: None }]);
        let run = assert_churn_reconciles(&net, &tc, m, 11);
        assert_eq!(run.report.churn.kills, 1, "{partitioner:?}");
    }
}

#[test]
fn sharded_coordinator_tracker_reconciles_under_churn() {
    let net = sprinkler_network();
    let m = 40_000usize;
    let tc = TrackerConfig::new(Scheme::Uniform)
        .with_k(5)
        .with_seed(21)
        .with_coord_workers(2)
        .with_faults(SiteFault::schedule(5, m as u64, 2, 21));
    let run = assert_churn_reconciles(&net, &tc, m, 21);
    assert!(run.report.churn.kills >= 1);
}

#[test]
fn decayed_cluster_tracker_survives_churn() {
    // Epoch settlements are the durable checkpoints: the decayed tracker
    // under churn still settles every epoch and reports a balanced ledger
    // (full-stream truth needs the per-epoch oracle here, so pin the
    // cheaper invariants: populated churn section, consistent epochs).
    let net = sprinkler_network();
    let m = 24_000u64;
    let tc = TrackerConfig::new(Scheme::NonUniform)
        .with_k(4)
        .with_seed(31)
        .with_faults(vec![SiteFault { site: 1, kill_at: m / 3, revive_at: Some(2 * m / 3) }]);
    let decay = EpochDecayConfig::new(0.5, m / 4, 8);
    let run = run_decayed_cluster_tracker(
        &net,
        &tc,
        &decay,
        TrainingStream::new(&net, 31).take(m as usize),
    )
    .expect("decayed cluster run failed");
    assert_eq!(run.report.events, m);
    assert_eq!(run.report.churn.kills, 1);
    assert_eq!(run.report.churn.revives, 1);
    // Per-counter: settled epochs + open epoch == surviving totals, so the
    // oracle stayed consistent across the crash (dead sites observe rolls
    // as all-zero snapshots).
    for c in 0..run.report.exact_totals.len() {
        let settled: u64 = run.report.epoch_exact_totals.iter().map(|e| e[c]).sum();
        assert_eq!(
            settled + run.report.open_epoch_exact_totals[c],
            run.report.exact_totals[c],
            "counter {c}"
        );
    }
}
