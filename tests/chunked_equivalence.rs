//! The chunked cross-event ingest pipeline must be indistinguishable from
//! the per-event pipeline it batches: under a shared seed the chunked
//! simulator tracker produces *bit-identical* estimates, exact totals, and
//! paper-convention message counts, and the chunked cluster produces
//! identical counts with identical bytes (the multi-event packet is the
//! concatenation of the same `encode_event` sections) — only the physical
//! packet count may drop. Mirrors `tests/batched_equivalence.rs`, which
//! pins the *within*-event batching this PR builds on.

use dsbn::bayes::{sprinkler_network, BayesianNetwork, NetworkSpec};
use dsbn::core::{build_tracker, run_cluster_tracker, CounterLayout, Scheme, TrackerConfig};
use dsbn::counters::ExactProtocol;
use dsbn::datagen::{chunk_events, TrainingStream};
use dsbn::monitor::{run_cluster, ClusterConfig};

fn net_by_name(name: &str) -> BayesianNetwork {
    match name {
        "sprinkler" => sprinkler_network(),
        "alarm" => NetworkSpec::alarm().generate(1).expect("alarm generation"),
        other => panic!("unknown net {other}"),
    }
}

/// Sim: `train` (chunked internally) vs a per-event `observe` loop over the
/// identical stream and seed — estimates bit-identical, totals and logical
/// message counts equal, bytes equal (the simulator accounts each event's
/// bundle independently of chunking).
fn assert_sim_chunked_equals_per_event(scheme: Scheme, net_name: &str, m: usize) {
    let net = net_by_name(net_name);
    let (k, seed, eps) = (5, 23u64, 0.1);
    let tc = TrackerConfig::new(scheme).with_k(k).with_seed(seed).with_eps(eps);

    let mut chunked = build_tracker(&net, &tc);
    chunked.train(TrainingStream::new(&net, 3), m as u64);

    let mut per_event = build_tracker(&net, &tc);
    for x in TrainingStream::new(&net, 3).take(m) {
        per_event.observe(&x);
    }

    assert_eq!(chunked.events(), per_event.events());
    let layout = CounterLayout::new(&net);
    for i in 0..layout.n_vars() {
        for u in 0..layout.parent_configs(i) {
            assert_eq!(
                chunked.exact_parent_count(i, u),
                per_event.exact_parent_count(i, u),
                "{}: parent total ({i},{u})",
                scheme.name()
            );
            for v in 0..layout.cardinality(i) {
                assert_eq!(
                    chunked.exact_family_count(i, v, u),
                    per_event.exact_family_count(i, v, u),
                    "{}: family total ({i},{v},{u})",
                    scheme.name()
                );
                let (cn, cd) = chunked.counter_pair(i, v, u);
                let (pn, pd) = per_event.counter_pair(i, v, u);
                assert_eq!(cn.to_bits(), pn.to_bits(), "{}: family estimate", scheme.name());
                assert_eq!(cd.to_bits(), pd.to_bits(), "{}: parent estimate", scheme.name());
            }
        }
    }
    assert_eq!(chunked.stats(), per_event.stats(), "{}: stats diverge", scheme.name());
}

#[test]
fn sim_chunked_train_is_bit_identical_sprinkler() {
    for scheme in Scheme::ALL {
        assert_sim_chunked_equals_per_event(scheme, "sprinkler", 20_000);
    }
}

#[test]
fn sim_chunked_train_is_bit_identical_alarm() {
    for scheme in [Scheme::ExactMle, Scheme::NonUniform] {
        assert_sim_chunked_equals_per_event(scheme, "alarm", 5_000);
    }
}

/// Cluster: the chunked transport at several chunk sizes vs the per-event
/// pipeline (`chunk = 1`), with exact counters so every figure is
/// deterministic under threading: identical estimates, totals, logical
/// up/down messages, and bytes; packets only ever fewer.
fn assert_cluster_chunked_equals_per_event(net_name: &str, m: u64) {
    let net = net_by_name(net_name);
    let layout = CounterLayout::new(&net);
    let protocols = vec![ExactProtocol; layout.n_counters()];
    let run = |chunk: usize| {
        let config = ClusterConfig::new(4, 11).with_chunk(chunk);
        let events = TrainingStream::new(&net, 7).chunks(chunk, m);
        run_cluster(&protocols, &config, events, |chunk, ids| layout.map_chunk(chunk, ids))
            .expect("cluster run failed")
    };
    let per_event = run(1);
    assert_eq!(per_event.events, m);
    assert_eq!(per_event.stats.packets, m, "one packet per event at chunk 1");
    for chunk in [7usize, 64, 256] {
        let chunked = run(chunk);
        assert_eq!(chunked.events, m, "{net_name} chunk {chunk}");
        assert_eq!(chunked.estimates, per_event.estimates, "{net_name} chunk {chunk}");
        assert_eq!(chunked.exact_totals, per_event.exact_totals, "{net_name} chunk {chunk}");
        assert_eq!(
            chunked.stats.up_messages, per_event.stats.up_messages,
            "{net_name} chunk {chunk}: logical up messages"
        );
        assert_eq!(
            chunked.stats.down_messages, per_event.stats.down_messages,
            "{net_name} chunk {chunk}: logical down messages"
        );
        assert_eq!(
            chunked.stats.bytes, per_event.stats.bytes,
            "{net_name} chunk {chunk}: bytes must not change, only packet framing"
        );
        assert!(
            chunked.stats.packets < per_event.stats.packets,
            "{net_name} chunk {chunk}: packets {} not amortized vs {}",
            chunked.stats.packets,
            per_event.stats.packets
        );
    }
}

#[test]
fn cluster_chunked_transport_is_equivalent_sprinkler() {
    assert_cluster_chunked_equals_per_event("sprinkler", 10_000);
}

#[test]
fn cluster_chunked_transport_is_equivalent_alarm() {
    assert_cluster_chunked_equals_per_event("alarm", 2_000);
}

/// The full tracker through `run_cluster_tracker` (which defaults to
/// chunked ingest) still agrees bit-for-bit with the sim tracker for the
/// exact scheme — the chunked analogue of the PR 3 cluster pin.
#[test]
fn cluster_tracker_chunked_matches_sim_tracker() {
    let net = sprinkler_network();
    let m = 5_000u64;
    for chunk in [1usize, 64, 256] {
        let tc = TrackerConfig::new(Scheme::ExactMle).with_k(4).with_seed(3).with_chunk(chunk);
        let mut sim = build_tracker(&net, &tc);
        sim.train(TrainingStream::new(&net, 17), m);
        let run = run_cluster_tracker(&net, &tc, TrainingStream::new(&net, 17).take(m as usize))
            .expect("cluster run failed");
        assert_eq!(run.report.events, m);
        let layout = run.model.layout();
        for i in 0..layout.n_vars() {
            for u in 0..layout.parent_configs(i) {
                for v in 0..layout.cardinality(i) {
                    let (num, den) = run.model.counter_pair(i, v, u);
                    let (sn, sd) = sim.counter_pair(i, v, u);
                    assert_eq!(num.to_bits(), sn.to_bits(), "chunk {chunk}: ({i},{v},{u})");
                    assert_eq!(den.to_bits(), sd.to_bits(), "chunk {chunk}: ({i},{u})");
                }
            }
        }
        for x in TrainingStream::new(&net, 99).take(10) {
            let d = (run.model.log_query(&x) - sim.log_query(&x)).abs();
            assert!(d < 1e-12, "chunk {chunk}: log query differs by {d}");
        }
    }
}

/// HYZ schemes on the cluster under chunked ingest: not bit-deterministic
/// under threading, but the exact totals must match the per-event run
/// (arrivals are never lost to coalescing) and the Definition 2 band must
/// hold against the same-stream exact MLE.
#[test]
fn cluster_randomized_chunked_stays_in_band() {
    let net = sprinkler_network();
    let m = 40_000usize;
    let eps = 0.1;
    for chunk in [16usize, 256] {
        let tc = TrackerConfig::new(Scheme::NonUniform)
            .with_k(5)
            .with_eps(eps)
            .with_seed(1)
            .with_chunk(chunk);
        let run = run_cluster_tracker(&net, &tc, TrainingStream::new(&net, 23).take(m))
            .expect("cluster run failed");
        assert_eq!(run.report.events, m as u64);
        assert!(run.report.stats.total() < 2 * 4 * m as u64, "chunk {chunk}: not sublinear");
        for x in TrainingStream::new(&net, 7).take(50) {
            let gap = (run.model.log_query(&x) - run.model.exact_log_query(&x)).abs();
            assert!(gap < 3.0 * eps, "chunk {chunk}: query band violated: {gap}");
        }
    }
}

/// Transport granularity (how the *caller* groups events into incoming
/// chunks) must not affect anything: the driver re-chunks per site by
/// `ClusterConfig::chunk`, so wire behavior is governed by the config
/// alone.
#[test]
fn incoming_chunk_granularity_is_transport_only() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    let protocols = vec![ExactProtocol; layout.n_counters()];
    let m = 5_000u64;
    let run = |transport: usize| {
        let config = ClusterConfig::new(3, 5).with_chunk(32);
        let events = TrainingStream::new(&net, 9).take(m as usize);
        run_cluster(&protocols, &config, chunk_events(events, transport), |chunk, ids| {
            layout.map_chunk(chunk, ids)
        })
        .expect("cluster run failed")
    };
    let a = run(1);
    let b = run(500);
    assert_eq!(a.estimates, b.estimates);
    assert_eq!(a.exact_totals, b.exact_totals);
    assert_eq!(a.stats.up_messages, b.stats.up_messages);
    assert_eq!(a.stats.bytes, b.stats.bytes);
    assert_eq!(a.stats.packets, b.stats.packets);
}
