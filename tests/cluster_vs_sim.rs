//! Integration tests for the threaded cluster runtime: the asynchronous
//! execution must agree (statistically) with the synchronous simulator and
//! survive its failure modes (stale rounds, shutdown with in-flight syncs).

use dsbn::bayes::{sprinkler_network, BayesianNetwork, NetworkSpec};
use dsbn::core::{
    allocate, build_tracker, run_cluster_tracker, CounterLayout, Scheme, TrackerConfig,
};
use dsbn::counters::{ExactProtocol, HyzProtocol};
use dsbn::datagen::{DriftWorkload, TrainingStream};
use dsbn::monitor::{run_cluster, ClusterConfig, Partitioner};
use dsbn_bayes::network::Assignment;

#[test]
fn exact_protocol_cluster_matches_sim_counts_exactly() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    let m = 20_000usize;
    let protocols = vec![ExactProtocol; layout.n_counters()];
    let events = TrainingStream::new(&net, 3).chunks(64, m as u64);
    let report = run_cluster(&protocols, &ClusterConfig::new(4, 7), events, |chunk, ids| {
        layout.map_chunk(chunk, ids)
    })
    .expect("cluster run failed");
    // Exact protocol: estimates equal exact totals, messages = 2 n m.
    assert_eq!(report.events, m as u64);
    for (e, &c) in report.estimates.iter().zip(&report.exact_totals) {
        assert_eq!(*e, c as f64);
    }
    assert_eq!(report.stats.up_messages, 2 * 4 * m as u64);
    // Each event bundles its 8 updates into one packet.
    assert_eq!(report.stats.packets, m as u64);
    // Parent counters of the root count every event.
    let root_parent = layout.parent_id(0, 0) as usize;
    assert_eq!(report.exact_totals[root_parent], m as u64);
}

#[test]
fn hyz_cluster_estimates_match_exact_totals_within_eps() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    let m = 100_000usize;
    let alloc = allocate(Scheme::NonUniform, &net, 0.1);
    let protocols: Vec<HyzProtocol> = layout
        .per_counter(&alloc.family_eps, &alloc.parent_eps)
        .into_iter()
        .map(HyzProtocol::new)
        .collect();
    let events = TrainingStream::new(&net, 5).chunks(64, m as u64);
    let report =
        run_cluster(&protocols, &ClusterConfig::new(6, 11).with_chunk(64), events, |chunk, ids| {
            layout.map_chunk(chunk, ids)
        })
        .expect("cluster run failed");
    assert_eq!(report.events, m as u64);
    // Every total was counted (sites never lose arrivals).
    let root_parent = layout.parent_id(0, 0) as usize;
    assert_eq!(report.exact_totals[root_parent], m as u64);
    // Estimates track the exact totals for well-populated counters. The
    // per-counter budgets are ~eps/16, so allow a generous multiple for
    // asynchronous transition noise.
    for (c, (&est, &total)) in report.estimates.iter().zip(&report.exact_totals).enumerate() {
        if total > 20_000 {
            let rel = (est - total as f64).abs() / total as f64;
            assert!(rel < 0.1, "counter {c}: estimate {est} vs total {total}");
        }
    }
    // Far fewer messages than exact maintenance.
    assert!(report.stats.total() < 2 * 4 * m as u64);
}

#[test]
fn cluster_round_robin_and_zipf_routes() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    for partitioner in [Partitioner::RoundRobin, Partitioner::Zipf { theta: 1.0 }] {
        let mut config = ClusterConfig::new(3, 2);
        config.partitioner = partitioner;
        let protocols = vec![ExactProtocol; layout.n_counters()];
        let events = TrainingStream::new(&net, 1).chunks(32, 5_000);
        let report =
            run_cluster(&protocols, &config, events, |chunk, ids| layout.map_chunk(chunk, ids))
                .expect("cluster run failed");
        assert_eq!(report.events, 5_000);
        let root_parent = layout.parent_id(0, 0) as usize;
        assert_eq!(report.exact_totals[root_parent], 5_000);
    }
}

/// ExactProtocol through `run_cluster` must report estimates *identical* to
/// the exact totals for every counter, for every partitioner, for several
/// seeds: the deterministic quiescence handshake guarantees no update is
/// ever lost to shutdown, so exactness is not statistical.
#[test]
fn exact_estimates_equal_totals_across_partitioners_and_seeds() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    let partitioners =
        [Partitioner::UniformRandom, Partitioner::RoundRobin, Partitioner::Zipf { theta: 1.2 }];
    for partitioner in partitioners {
        for seed in [1u64, 42, 1234] {
            let mut config = ClusterConfig::new(4, seed).with_chunk(16);
            config.partitioner = partitioner;
            let protocols = vec![ExactProtocol; layout.n_counters()];
            let events = TrainingStream::new(&net, seed).chunks(16, 4_000);
            let report =
                run_cluster(&protocols, &config, events, |chunk, ids| layout.map_chunk(chunk, ids))
                    .expect("cluster run failed");
            assert_eq!(report.events, 4_000);
            for (c, (&est, &total)) in report.estimates.iter().zip(&report.exact_totals).enumerate()
            {
                assert_eq!(
                    est, total as f64,
                    "{partitioner:?} seed {seed}: counter {c} estimate {est} != total {total}"
                );
            }
            // The stream determines the totals; routing must not.
            let root_parent = layout.parent_id(0, 0) as usize;
            assert_eq!(report.exact_totals[root_parent], 4_000);
        }
    }
}

/// The full trackers (Algorithms 1–3) on the cluster agree with the
/// synchronous simulator on the same stream: exact totals match exactly and
/// queries stay within the protocol's `e^{±eps}` band of the exact MLE —
/// Definition 2, checked live for every approximate scheme. The stream
/// factory lets the same contract be pinned on stationary and drift
/// workloads alike (the counter-level guarantee is distribution-free).
fn assert_tracker_equivalence_on<S, I>(
    net: &BayesianNetwork,
    m: usize,
    k: usize,
    seed: u64,
    stream: S,
) where
    S: Fn() -> I,
    I: Iterator<Item = Assignment>,
{
    let eps = 0.1;
    let queries: Vec<Vec<usize>> = TrainingStream::new(net, seed ^ 0xabcd).take(40).collect();
    for scheme in [Scheme::Baseline, Scheme::Uniform, Scheme::NonUniform] {
        let tc = TrackerConfig::new(scheme).with_eps(eps).with_k(k).with_seed(seed);
        let mut sim = build_tracker(net, &tc);
        sim.train(stream(), m as u64);
        let run = run_cluster_tracker(net, &tc, stream().take(m)).expect("cluster run failed");
        assert_eq!(run.report.events, m as u64);

        // Same stream => identical exact counts in both runtimes,
        // regardless of event routing or thread interleaving.
        let layout = run.model.layout();
        for i in 0..layout.n_vars() {
            for u in 0..layout.parent_configs(i) {
                assert_eq!(
                    run.model.exact_total(layout.parent_id(i, u) as usize),
                    sim.exact_parent_count(i, u),
                    "{}: parent ({i},{u}) totals diverge",
                    scheme.name()
                );
                for v in 0..layout.cardinality(i) {
                    assert_eq!(
                        run.model.exact_total(layout.family_id(i, v, u) as usize),
                        sim.exact_family_count(i, v, u),
                        "{}: family ({i},{v},{u}) totals diverge",
                        scheme.name()
                    );
                }
            }
        }

        // Definition 2 band, live: the cluster model's QUERY answers stay
        // within e^{±eps} of the exact MLE over the same stream (3x slack
        // for whp + asynchronous transition noise), and so does the sim's,
        // so the two runtimes agree within twice the band.
        for q in &queries {
            let mle = run.model.exact_log_query(q);
            let cluster_gap = (run.model.log_query(q) - mle).abs();
            assert!(
                cluster_gap < 3.0 * eps,
                "{}: cluster query band violated: {cluster_gap}",
                scheme.name()
            );
            let sim_gap = (sim.log_query(q) - mle).abs();
            assert!(sim_gap < 3.0 * eps, "{}: sim query band violated: {sim_gap}", scheme.name());
        }
    }
}

#[test]
fn full_tracker_cluster_matches_sim_on_sprinkler() {
    let net = sprinkler_network();
    assert_tracker_equivalence_on(&net, 60_000, 5, 9, || TrainingStream::new(&net, 9));
}

#[test]
fn full_tracker_cluster_matches_sim_on_alarm() {
    let net = NetworkSpec::alarm().generate(1).expect("alarm generation");
    assert_tracker_equivalence_on(&net, 30_000, 6, 4, || TrainingStream::new(&net, 4));
}

/// Drift workloads through the same contract, over a seed sweep: the
/// generating distribution switching mid-stream must not disturb either
/// the exact-total equivalence (the counters only see arrivals) or the
/// `e^{±eps}` band vs the same-stream exact MLE, for every approximate
/// scheme on both runtimes.
#[test]
fn full_tracker_cluster_matches_sim_on_sprinkler_drift() {
    let base = sprinkler_network();
    let workload = DriftWorkload::parameter_drift(&base, 2, 20_000, 0.8, 0.01, 13).unwrap();
    let m = workload.scripted_events() as usize;
    for seed in [1u64, 2, 3] {
        assert_tracker_equivalence_on(&base, m, 5, seed, || workload.stream(seed));
    }
}

#[test]
fn full_tracker_cluster_matches_sim_on_alarm_drift() {
    let base = NetworkSpec::alarm().generate(1).expect("alarm generation");
    let workload = DriftWorkload::parameter_drift(&base, 3, 8_000, 0.8, 0.01, 21).unwrap();
    let m = workload.scripted_events() as usize;
    assert_tracker_equivalence_on(&base, m, 6, 5, || workload.stream(5));
}

#[test]
fn repeated_runs_terminate_cleanly() {
    // Shutdown with in-flight syncs must never hang; exercise repeatedly
    // with tiny streams and aggressive rounds (large eps -> frequent syncs
    // relative to stream length).
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    for seed in 0..5u64 {
        let alloc = allocate(Scheme::Uniform, &net, 0.5);
        let protocols: Vec<HyzProtocol> = layout
            .per_counter(&alloc.family_eps, &alloc.parent_eps)
            .into_iter()
            .map(HyzProtocol::new)
            .collect();
        let events = TrainingStream::new(&net, seed).chunks(8, 2_000);
        let report = run_cluster(
            &protocols,
            &ClusterConfig::new(5, seed).with_chunk(8),
            events,
            |chunk, ids| layout.map_chunk(chunk, ids),
        )
        .expect("cluster run failed");
        assert_eq!(report.events, 2_000);
    }
}
