//! Integration tests for the threaded cluster runtime: the asynchronous
//! execution must agree (statistically) with the synchronous simulator and
//! survive its failure modes (stale rounds, shutdown with in-flight syncs).

use dsbn::bayes::sprinkler_network;
use dsbn::core::{allocate, CounterLayout, Scheme};
use dsbn::counters::{ExactProtocol, HyzProtocol};
use dsbn::datagen::TrainingStream;
use dsbn::monitor::{run_cluster, ClusterConfig, Partitioner};

#[test]
fn exact_protocol_cluster_matches_sim_counts_exactly() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    let m = 20_000usize;
    let protocols = vec![ExactProtocol; layout.n_counters()];
    let events = TrainingStream::new(&net, 3).take(m);
    let report = run_cluster(&protocols, &ClusterConfig::new(4, 7), events, |x, ids| {
        layout.map_event(x, ids)
    });
    // Exact protocol: estimates equal exact totals, messages = 2 n m.
    assert_eq!(report.events, m as u64);
    for (e, &c) in report.estimates.iter().zip(&report.exact_totals) {
        assert_eq!(*e, c as f64);
    }
    assert_eq!(report.stats.up_messages, 2 * 4 * m as u64);
    // Each event bundles its 8 updates into one packet.
    assert_eq!(report.stats.packets, m as u64);
    // Parent counters of the root count every event.
    let root_parent = layout.parent_id(0, 0) as usize;
    assert_eq!(report.exact_totals[root_parent], m as u64);
}

#[test]
fn hyz_cluster_estimates_match_exact_totals_within_eps() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    let m = 100_000usize;
    let alloc = allocate(Scheme::NonUniform, &net, 0.1);
    let protocols: Vec<HyzProtocol> = layout
        .per_counter(&alloc.family_eps, &alloc.parent_eps)
        .into_iter()
        .map(HyzProtocol::new)
        .collect();
    let events = TrainingStream::new(&net, 5).take(m);
    let report = run_cluster(&protocols, &ClusterConfig::new(6, 11), events, |x, ids| {
        layout.map_event(x, ids)
    });
    assert_eq!(report.events, m as u64);
    // Every total was counted (sites never lose arrivals).
    let root_parent = layout.parent_id(0, 0) as usize;
    assert_eq!(report.exact_totals[root_parent], m as u64);
    // Estimates track the exact totals for well-populated counters. The
    // per-counter budgets are ~eps/16, so allow a generous multiple for
    // asynchronous transition noise.
    for (c, (&est, &total)) in report.estimates.iter().zip(&report.exact_totals).enumerate() {
        if total > 20_000 {
            let rel = (est - total as f64).abs() / total as f64;
            assert!(rel < 0.1, "counter {c}: estimate {est} vs total {total}");
        }
    }
    // Far fewer messages than exact maintenance.
    assert!(report.stats.total() < 2 * 4 * m as u64);
}

#[test]
fn cluster_round_robin_and_zipf_routes() {
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    for partitioner in [Partitioner::RoundRobin, Partitioner::Zipf { theta: 1.0 }] {
        let mut config = ClusterConfig::new(3, 2);
        config.partitioner = partitioner;
        let protocols = vec![ExactProtocol; layout.n_counters()];
        let events = TrainingStream::new(&net, 1).take(5_000);
        let report = run_cluster(&protocols, &config, events, |x, ids| layout.map_event(x, ids));
        assert_eq!(report.events, 5_000);
        let root_parent = layout.parent_id(0, 0) as usize;
        assert_eq!(report.exact_totals[root_parent], 5_000);
    }
}

#[test]
fn repeated_runs_terminate_cleanly() {
    // Shutdown with in-flight syncs must never hang; exercise repeatedly
    // with tiny streams and aggressive rounds (large eps -> frequent syncs
    // relative to stream length).
    let net = sprinkler_network();
    let layout = CounterLayout::new(&net);
    for seed in 0..5u64 {
        let alloc = allocate(Scheme::Uniform, &net, 0.5);
        let protocols: Vec<HyzProtocol> = layout
            .per_counter(&alloc.family_eps, &alloc.parent_eps)
            .into_iter()
            .map(HyzProtocol::new)
            .collect();
        let events = TrainingStream::new(&net, seed).take(2_000);
        let report = run_cluster(&protocols, &ClusterConfig::new(5, seed), events, |x, ids| {
            layout.map_event(x, ids)
        });
        assert_eq!(report.events, 2_000);
    }
}
