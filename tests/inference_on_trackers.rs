//! Variable-elimination inference running directly on streaming trackers:
//! the `CpdSource` abstraction lets `bayes::inference::marginal` answer
//! arbitrary conditional marginal queries from the continuously maintained
//! counters — not just the full-evidence classification of §V.

use dsbn::bayes::inference::marginal;
use dsbn::bayes::{sprinkler_network, NetworkSpec};
use dsbn::core::{build_tracker, Scheme, TrackerConfig};
use dsbn::datagen::TrainingStream;

#[test]
fn tracker_marginals_converge_to_truth() {
    let net = sprinkler_network();
    let mut t = build_tracker(
        &net,
        &TrackerConfig::new(Scheme::NonUniform).with_eps(0.1).with_k(6).with_seed(3),
    );
    t.train(TrainingStream::new(&net, 8), 100_000);
    // P(Rain | WetGrass = wet) from the tracked model vs ground truth.
    let truth = marginal(&net, &net, &[2], &[(3, 1)]).unwrap();
    let tracked = marginal(&net, &t, &[2], &[(3, 1)]).unwrap();
    for (a, b) in tracked.table().iter().zip(truth.table()) {
        assert!((a - b).abs() < 0.02, "tracked {:?} vs truth {:?}", tracked.table(), truth.table());
    }
    // Pairwise marginal without evidence.
    let truth = marginal(&net, &net, &[1, 2], &[]).unwrap();
    let tracked = marginal(&net, &t, &[1, 2], &[]).unwrap();
    for (a, b) in tracked.table().iter().zip(truth.table()) {
        assert!((a - b).abs() < 0.02);
    }
}

#[test]
fn tracker_marginals_on_larger_network() {
    let net = NetworkSpec::alarm().generate(2).unwrap();
    let mut t = build_tracker(
        &net,
        &TrackerConfig::new(Scheme::Uniform).with_eps(0.1).with_k(8).with_seed(5),
    );
    t.train(TrainingStream::new(&net, 9), 50_000);
    // Single-variable marginals from the tracked model track the truth.
    let mut worst: f64 = 0.0;
    for target in (0..net.n_vars()).step_by(7) {
        let truth = marginal(&net, &net, &[target], &[]).unwrap();
        let tracked = marginal(&net, &t, &[target], &[]).unwrap();
        for (a, b) in tracked.table().iter().zip(truth.table()) {
            worst = worst.max((a - b).abs());
        }
    }
    assert!(worst < 0.05, "worst marginal gap {worst}");
}

#[test]
fn decayed_model_supports_inference_too() {
    use dsbn::core::{DecayConfig, DecayedMle, Smoothing};
    let net = sprinkler_network();
    let mut d =
        DecayedMle::new(&net, DecayConfig::with_half_life(50_000.0, Smoothing::Pseudocount(0.5)));
    for x in TrainingStream::new(&net, 4).take(80_000) {
        d.observe(&x);
    }
    let truth = marginal(&net, &net, &[0], &[(3, 1)]).unwrap();
    let tracked = marginal(&net, &d, &[0], &[(3, 1)]).unwrap();
    for (a, b) in tracked.table().iter().zip(truth.table()) {
        assert!((a - b).abs() < 0.03);
    }
}
