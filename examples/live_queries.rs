//! Live queries: answer classification and QUERY traffic *while* the
//! distributed cluster is still ingesting — no lock on the read path, no
//! message to the coordinator, no pause in ingest.
//!
//! The ingest side runs the paper's NONUNIFORM tracker on the threaded
//! cluster with epoch settlements every 2 000 events; each settlement
//! mints a consistent counter snapshot into a `SnapshotHub`. The query
//! side is a `SnapshotServer` shared by reader threads: two lock-free
//! loads per query, answers frozen at the latest settlement.
//!
//! Run with: `cargo run --release --example live_queries`

use dsbn::bayes::sprinkler_network;
use dsbn::core::{run_cluster_tracker, Scheme, SnapshotHub, SnapshotServer, TrackerConfig};
use dsbn::datagen::TrainingStream;
use std::sync::atomic::{AtomicBool, Ordering};

fn main() {
    let net = sprinkler_network();

    // 1. A hub for settlement snapshots, wired into the tracker config:
    //    publish a consistent cut every 2 000 ingested events, plus the
    //    final state when the run flushes.
    let hub = SnapshotHub::new();
    let config = TrackerConfig::new(Scheme::NonUniform)
        .with_eps(0.1)
        .with_k(8)
        .with_snapshot_every(2_000)
        .with_publish(hub.clone());

    // 2. A server over the hub. It can be shared by any number of reader
    //    threads; queries before the first settlement answer from the
    //    uniform prior.
    let server = SnapshotServer::new(&net, config.smoothing, hub.clone());

    // 3. Ingest 200K events on this thread while a reader classifies
    //    mid-stream from another. `thread::scope` lets both borrow the
    //    server; an atomic flag tells the reader when ingest is done.
    let m = 200_000;
    let done = AtomicBool::new(false);
    let (run, answered) = std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            // Classify "rain?" (variable 2) given the other three
            // variables, against whatever settlement is current.
            let mut evidence = [1, 0, 0, 1]; // cloudy, no sprinkler, wet grass
            let mut answered = 0u64;
            let mut last_seq = 0;
            while !done.load(Ordering::Relaxed) {
                let rain = server.classify(2, &mut evidence);
                answered += 1;
                let seq = server.seq();
                if seq != last_seq {
                    last_seq = seq;
                    println!("  [reader] settlement {seq:>3}: P(rain | evidence) -> class {rain}");
                }
            }
            answered
        });

        let run = run_cluster_tracker(&net, &config, TrainingStream::new(&net, 42).take(m))
            .expect("cluster run failed");
        done.store(true, Ordering::Relaxed);
        (run, reader.join().expect("reader thread panicked"))
    });

    // 4. After the flush the final settlement is published: the server now
    //    answers byte-identically to the returned end-of-run model.
    let x = [1, 0, 1, 1];
    println!("\ningested {} events across {} settlements", run.report.events, hub.seq());
    println!("reader answered {answered} classifications mid-stream");
    println!("P~ served  = {:.5}", server.query(&x));
    println!("P~ model   = {:.5}", run.model.query(&x));
    assert_eq!(server.log_query(&x).to_bits(), run.model.log_query(&x).to_bits());
    println!("served == model, bit for bit");
}
