//! Sensor-fleet monitoring — the paper's motivating scenario (§I): a
//! large-scale sensor network where each sensor observes local events with
//! many correlated features, and a coordinator continuously maintains a
//! joint model without centralizing the raw stream.
//!
//! This example runs the *live threaded cluster runtime*: one OS thread
//! per sensor site plus a coordinator thread over channels, exactly as the
//! paper's EC2 deployment (Figs. 7-8), and reports runtime, throughput,
//! and the message savings of the NONUNIFORM algorithm.
//!
//! Run with: `cargo run --release --example sensor_fleet`

use dsbn::bayes::NetworkSpec;
use dsbn::core::{allocate, CounterLayout, Scheme};
use dsbn::counters::{ExactProtocol, HyzProtocol};
use dsbn::datagen::TrainingStream;
use dsbn::monitor::{run_cluster, ClusterConfig};

fn main() {
    // The "environment model" the fleet observes: ALARM-sized (37
    // correlated variables). Each event is a full reading of all features.
    let net = NetworkSpec::alarm().generate(42).unwrap();
    let layout = CounterLayout::new(&net);
    let k = 8; // sensors
    let m = 100_000u64; // readings
    println!(
        "fleet: {k} sensor sites, model '{}' ({} variables, {} CPD counters), {m} readings\n",
        net.name(),
        net.n_vars(),
        layout.n_counters()
    );

    // Readings travel the chunked ingest pipeline: minted straight into
    // 256-event slabs, shipped as multi-event packets (one channel send /
    // one coordinator decode per chunk instead of per reading).
    let chunk = 256;

    // Exact maintenance: every reading forwards 2n counter updates.
    let exact_report = {
        let protocols = vec![ExactProtocol; layout.n_counters()];
        let events = TrainingStream::new(&net, 9).chunks(chunk, m);
        run_cluster(
            &protocols,
            &ClusterConfig::new(k, 1).with_chunk(chunk),
            events,
            |chunk, ids| layout.map_chunk(chunk, ids),
        )
        .expect("cluster run failed")
    };

    // NONUNIFORM at eps = 0.1.
    let nonuni_report = {
        let alloc = allocate(Scheme::NonUniform, &net, 0.1);
        let protocols: Vec<HyzProtocol> = layout
            .per_counter(&alloc.family_eps, &alloc.parent_eps)
            .into_iter()
            .map(HyzProtocol::new)
            .collect();
        let events = TrainingStream::new(&net, 9).chunks(chunk, m);
        run_cluster(
            &protocols,
            &ClusterConfig::new(k, 1).with_chunk(chunk),
            events,
            |chunk, ids| layout.map_chunk(chunk, ids),
        )
        .expect("cluster run failed")
    };

    for (name, r) in [("EXACT-MLE", &exact_report), ("NONUNIFORM", &nonuni_report)] {
        println!(
            "{name:>11}: {:>9} counter updates, {:>7} packets, {:.2}s coordinator busy, {:>8.0} events/s",
            r.stats.total(),
            r.stats.packets,
            r.coordinator_busy.as_secs_f64(),
            r.throughput()
        );
    }
    let saving = exact_report.stats.total() as f64 / nonuni_report.stats.total().max(1) as f64;
    println!("\ncommunication saving: {saving:.1}x (grows with stream length — Fig. 6)");

    // Sanity: the coordinator's estimates track the exact per-counter
    // totals reconstructed at shutdown.
    let worst_rel = nonuni_report
        .estimates
        .iter()
        .zip(&nonuni_report.exact_totals)
        .filter(|(_, &c)| c > 1000)
        .map(|(&e, &c)| (e - c as f64).abs() / c as f64)
        .fold(0.0f64, f64::max);
    println!("worst relative error among high-count counters: {worst_rel:.4}");
}
