//! Concept drift and time decay — the paper's future work (2).
//!
//! A pollution-monitoring model changes mid-stream (say, a new emission
//! source appears). The plain cumulative MLE keeps averaging over stale
//! history; an exponentially decayed model re-converges quickly. This
//! example quantifies that with the `dsbn::core::decay` extension.
//!
//! Run with: `cargo run --release --example drift_adaptation`

use dsbn::bayes::NetworkSpec;
use dsbn::core::{DecayConfig, DecayedMle, Smoothing};
use dsbn::datagen::{generate_queries, DriftingStream, QueryConfig};

fn main() {
    let before = NetworkSpec::alarm().generate(5).unwrap();
    // Same structure and domains, freshly drawn CPTs: a pure parameter drift.
    let after = dsbn::bayes::generate::redraw_cpts(&before, 0.8, 0.01, 99).unwrap();
    let phase_len = 60_000u64;

    let smoothing = Smoothing::Pseudocount(0.5);
    let mut plain = DecayedMle::new(&before, DecayConfig { lambda: 1.0, smoothing });
    let mut decayed = DecayedMle::new(&before, DecayConfig::with_half_life(8_000.0, smoothing));

    let queries =
        generate_queries(&after, &QueryConfig { n_queries: 400, ..Default::default() }, 3);
    // Mean absolute log error in nats: additive over the n factors, so it
    // does not blow up exponentially with network size the way the
    // relative joint error does.
    let mean_err = |model: &DecayedMle| -> f64 {
        let s: f64 =
            queries.iter().map(|q| (model.log_query(q) - after.joint_log_prob(q)).abs()).sum();
        s / queries.len() as f64
    };

    println!(
        "drift occurs at event {phase_len}; mean |log P~ - log P*| (nats) vs POST-drift truth\n"
    );
    println!("{:>10} {:>12} {:>14}", "events", "plain MLE", "decayed MLE");
    let mut stream = DriftingStream::new(&[(&before, phase_len), (&after, phase_len)], 17);
    let checkpoints =
        [phase_len / 2, phase_len, phase_len + 5_000, phase_len + 20_000, 2 * phase_len];
    let mut seen = 0u64;
    for &cp in &checkpoints {
        while seen < cp {
            let x = stream.next().unwrap();
            plain.observe(&x);
            decayed.observe(&x);
            seen += 1;
        }
        println!("{cp:>10} {:>12.2} {:>14.2}", mean_err(&plain), mean_err(&decayed));
    }
    println!(
        "\n(after the drift the decayed model re-converges within a few \
         half-lives; the plain MLE stays anchored to pre-drift history)"
    );
}
