//! Online Bayesian classification — the paper's malware/cybersecurity
//! motivation (§I): "as more data [is] observed, the Bayesian network can
//! be adjusted in an online manner to better classify future inputs as
//! either benign or malicious."
//!
//! We build a naive-Bayes-style detector over categorical traffic
//! features, stream labeled observations from distributed collection
//! points, and watch the classifier's error fall while communication stays
//! sublinear.
//!
//! Run with: `cargo run --release --example intrusion_classifier`

use dsbn::bayes::rngutil::dirichlet;
use dsbn::bayes::{BayesianNetwork, Cpt, Dag, Variable};
use dsbn::core::{build_tracker, classification_error_rate, Scheme, TrackerConfig};
use dsbn::datagen::{generate_classification_cases, ClassificationCase, TrainingStream};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A naive Bayes "intrusion detector": class -> each feature.
fn detector_model(seed: u64) -> BayesianNetwork {
    let features: [(&str, usize); 6] = [
        ("protocol", 3),     // tcp/udp/icmp
        ("port_class", 5),   // well-known/registered/ephemeral/...
        ("payload_size", 4), // bucketized
        ("flag_pattern", 6),
        ("rate_class", 4),
        ("geo_class", 5),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let n = features.len() + 1;
    let mut variables =
        vec![Variable::new("verdict", vec!["benign".into(), "malicious".into()]).unwrap()];
    let mut dag = Dag::new(n);
    // Class prior: 85% benign.
    let mut cpts = vec![Cpt::new(0, 2, vec![], vec![0.85, 0.15]).unwrap()];
    for (f, (name, j)) in features.iter().enumerate() {
        let i = f + 1;
        dag.add_edge(0, i).unwrap();
        variables.push(Variable::with_cardinality(*name, *j).unwrap());
        // Distinct per-class feature distributions (skewed Dirichlet).
        let mut table = Vec::with_capacity(2 * j);
        for _ in 0..2 {
            let row = dirichlet(&mut rng, 0.6, *j);
            table.extend(row.into_iter().map(|p| 0.9 * p + 0.1 / *j as f64));
        }
        cpts.push(Cpt::new(i, *j, vec![2], table).unwrap());
    }
    BayesianNetwork::new("intrusion-nb", variables, dag, cpts).unwrap()
}

fn main() {
    let truth = detector_model(7);
    // Held-out labeled traffic: always predict the verdict (variable 0).
    let cases: Vec<ClassificationCase> = generate_classification_cases(&truth, 3000, 11)
        .into_iter()
        .map(|mut c| {
            c.target = 0;
            c
        })
        .collect();

    // The detector learns online from k = 12 collection points.
    let mut tracker = build_tracker(
        &truth,
        &TrackerConfig::new(Scheme::NonUniform).with_eps(0.1).with_k(12).with_seed(3),
    );
    let bayes_rate = classification_error_rate(&truth, &truth, &cases);
    println!("Bayes-optimal error rate (ground-truth model): {bayes_rate:.3}\n");
    println!("{:>10} {:>12} {:>16}", "events", "error rate", "messages");

    let mut stream = TrainingStream::new(&truth, 5);
    for &checkpoint in &[100u64, 1_000, 10_000, 100_000] {
        let already = tracker.events();
        tracker.train(&mut stream, checkpoint - already);
        let rate = classification_error_rate(&truth, &tracker, &cases);
        println!("{checkpoint:>10} {rate:>12.3} {:>16}", tracker.stats().total());
    }
    println!(
        "\n(the streaming detector approaches the Bayes rate while its \
         communication grows only logarithmically)"
    );
}
