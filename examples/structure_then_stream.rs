//! Bootstrap a structure offline, then track its parameters online — the
//! deployment the paper sketches in §III: "the graph structure can be
//! learned offline based on a suitable sample of the data", after which
//! the distributed stream maintains the parameters.
//!
//! Pipeline:
//! 1. take an initial sample from the (unknown) environment;
//! 2. learn a Chow–Liu tree structure from it (`dsbn::bayes::chowliu`);
//! 3. hand the learned structure to a NONUNIFORM tracker and keep its
//!    parameters fresh over the distributed stream.
//!
//! Run with: `cargo run --release --example structure_then_stream`

use dsbn::bayes::chowliu::learn_tree;
use dsbn::bayes::NetworkSpec;
use dsbn::core::{build_tracker, Scheme, TrackerConfig};
use dsbn::datagen::{generate_queries, QueryConfig, TrainingStream};

fn main() {
    // The "environment": a ground-truth model we can only sample.
    let env = NetworkSpec::alarm().generate(21).unwrap();

    // 1-2. Offline bootstrap: 20K sample rows -> Chow-Liu tree.
    let sample: Vec<Vec<usize>> = TrainingStream::new(&env, 1).take(20_000).collect();
    let cards: Vec<usize> = (0..env.n_vars()).map(|i| env.cardinality(i)).collect();
    let names: Vec<String> = (0..env.n_vars()).map(|i| env.variable(i).name().to_owned()).collect();
    let tree = learn_tree(&sample, &cards, &names, 0, 1.0).expect("structure learning failed");
    println!(
        "learned Chow-Liu tree: {} nodes, {} edges, max parents {}",
        tree.n_vars(),
        tree.dag().n_edges(),
        tree.dag().max_parents()
    );

    // 3. Online phase: track the tree's parameters over the distributed
    //    stream (k = 16 sites). The tree CPTs learned offline are ignored —
    //    parameters come from the stream.
    let mut tracker = build_tracker(
        &tree,
        &TrackerConfig::new(Scheme::NonUniform).with_eps(0.1).with_k(16).with_seed(2),
    );
    tracker.train(TrainingStream::new(&env, 8), 200_000);

    // How good is the streamed tree model against the real environment?
    let queries = generate_queries(&env, &QueryConfig { n_queries: 500, ..Default::default() }, 4);
    let mut err_sum = 0.0;
    for q in &queries {
        let lt = tracker.log_query(q);
        let le = env.joint_log_prob(q);
        err_sum += (lt - le).abs();
    }
    println!(
        "mean |log P~(tree) - log P*(env)| over {} queries: {:.3} nats \
         (tree projection + sampling error)",
        queries.len(),
        err_sum / queries.len() as f64
    );
    println!(
        "messages for 200K distributed observations: {} (exact would be {})",
        tracker.stats().total(),
        2 * tree.n_vars() as u64 * 200_000
    );
}
