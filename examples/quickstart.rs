//! Quickstart: maintain a Bayesian network model over a distributed stream
//! with a fraction of the communication of exact maintenance.
//!
//! Run with: `cargo run --release --example quickstart`

use dsbn::bayes::sprinkler_network;
use dsbn::core::{build_tracker, Scheme, TrackerConfig};
use dsbn::datagen::TrainingStream;

fn main() {
    // 1. A Bayesian network structure (here: the classic 4-node sprinkler
    //    network; see `dsbn::bayes::NetworkSpec` for the paper's ALARM /
    //    HEPAR II / LINK / MUNIN presets, or `dsbn::bayes::bif::parse` to
    //    load a bnlearn .bif file).
    let net = sprinkler_network();

    // 2. Two trackers over k = 8 distributed sites: the exact-MLE strawman
    //    and the paper's NONUNIFORM algorithm at eps = 0.1.
    let mut exact = build_tracker(&net, &TrackerConfig::new(Scheme::ExactMle).with_k(8));
    let mut nonuniform =
        build_tracker(&net, &TrackerConfig::new(Scheme::NonUniform).with_eps(0.1).with_k(8));

    // 3. Stream 200K observations (simulated from the ground-truth model)
    //    through both.
    let m = 200_000;
    exact.train(TrainingStream::new(&net, 7), m);
    nonuniform.train(TrainingStream::new(&net, 7), m);

    // 4. Query the maintained joint distribution.
    let event = [1, 0, 1, 1]; // cloudy, sprinkler off, rain, wet grass
    let truth = net.joint_prob(&event);
    println!("P*(cloudy, no sprinkler, rain, wet)  = {truth:.5} (ground truth)");
    println!("P^ (exact MLE)                       = {:.5}", exact.query(&event));
    println!("P~ (NONUNIFORM, eps=0.1)             = {:.5}", nonuniform.query(&event));

    // 5. The point of the paper: the approximate model cost far fewer
    //    messages.
    let me = exact.stats().total();
    let mn = nonuniform.stats().total();
    println!("\nmessages (exact MLE)   = {me}");
    println!("messages (NONUNIFORM)  = {mn}  ({:.1}x fewer)", me as f64 / mn as f64);

    // 6. Classification: is it raining, given everything else we see?
    let mut evidence = [1, 0, 0, 1]; // rain value is ignored
    let predicted = nonuniform.classify(2, &mut evidence);
    println!(
        "\npredicted Rain state given (cloudy, sprinkler off, wet grass): {}",
        net.variable(2).states()[predicted]
    );
}
