//! Offline stand-in for the `bytes` crate.
//!
//! Implements [`Bytes`], [`BytesMut`], [`Buf`], and [`BufMut`] with the
//! little-endian accessor surface the dsbn wire format uses. [`Bytes`]
//! shares its backing store via `Arc` so `clone`/`slice` are O(1), like the
//! real crate; the zero-copy vtable machinery is intentionally absent.

use std::sync::Arc;

/// Read-side cursor abstraction.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// `remaining() > 0`.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side abstraction.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Cheaply cloneable immutable byte buffer (a window into shared storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy a slice into a freshly allocated shared buffer (real-`bytes`
    /// parity: one allocation + one copy, so a reused scratch `BytesMut`
    /// can be flushed into a sendable `Bytes` without losing its capacity).
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data), start: 0, end: data.len() }
    }

    /// O(1) sub-window sharing the same storage. Panics if out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        v.to_vec().into()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:02x?})", self.as_slice())
    }
}

/// Growable byte buffer; [`BytesMut::freeze`] converts to [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn freeze(self) -> Bytes {
        self.data.into()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:02x?})", self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(0xbeef);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f64_le(0.125);
        assert_eq!(buf.len(), 1 + 2 + 4 + 8 + 8);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0xbeef);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), u64::MAX - 3);
        assert_eq!(b.get_f64_le(), 0.125);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_is_a_window() {
        let b: Bytes = vec![0, 1, 2, 3, 4, 5].into();
        let s = b.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(s2.as_slice(), &[3]);
        assert_eq!(b.len(), 6); // original untouched
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_bounds_checked() {
        let b: Bytes = vec![1, 2, 3].into();
        let _ = b.slice(0..4);
    }
}
