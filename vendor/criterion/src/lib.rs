//! Offline stand-in for the `criterion` crate.
//!
//! Exposes the macro + builder API surface the dsbn benches use
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], [`Throughput`]) and, when actually executed via
//! `cargo bench`, runs a simple calibrated wall-clock loop per benchmark:
//! a warm-up to size the iteration count to ~200 ms, then `sample_size`
//! timed samples, reporting median ns/iter and derived throughput.
//!
//! No statistical outlier analysis, plots, or baseline comparisons — this
//! exists so `cargo bench` produces honest first-order numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration and sink for benchmark registration.
pub struct Criterion {
    sample_size: usize,
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, target_time: Duration::from_millis(200) }
    }
}

/// Throughput annotation attached to a group; turns ns/iter into rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Passed to the user's closure; [`Bencher::iter`] runs the measurement.
pub struct Bencher<'a> {
    sample_size: usize,
    target_time: Duration,
    result: &'a mut Option<Sample>,
}

struct Sample {
    median_ns_per_iter: f64,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit one sample's time slice?
        let t0 = Instant::now();
        black_box(f());
        let one = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.target_time.as_secs_f64() / self.sample_size as f64;
        let iters = (per_sample / one.as_secs_f64()).clamp(1.0, 1e7) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        *self.result = Some(Sample { median_ns_per_iter: samples[samples.len() / 2] });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.criterion.target_time, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_one(&id.id, self.sample_size, self.target_time, None, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    target_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut result = None;
    let mut bencher = Bencher { sample_size, target_time, result: &mut result };
    f(&mut bencher);
    match result {
        Some(sample) => {
            let ns = sample.median_ns_per_iter;
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => format!(" ({:.3e} elem/s)", n as f64 * 1e9 / ns),
                Throughput::Bytes(n) => format!(" ({:.3e} B/s)", n as f64 * 1e9 / ns),
            });
            println!("{name:<60} {ns:>14.1} ns/iter{}", rate.unwrap_or_default());
        }
        None => println!("{name:<60} (no measurement: Bencher::iter never called)"),
    }
}

/// Bundle benchmark functions into a group runner, as upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { sample_size: 3, target_time: Duration::from_millis(5) };
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        let mut ran = 0;
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| black_box(2 + 2));
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 2);
    }
}
