//! Offline stand-in for the `proptest` crate.
//!
//! Reimplements the subset of proptest the dsbn test suites use, backed by
//! deterministic per-test seeding (a hash of `module_path::test_name` and
//! the case index), so every run explores the same cases and CI failures
//! reproduce locally without a persistence file.
//!
//! Supported: the [`proptest!`] macro (with `#![proptest_config(...)]`,
//! `arg in strategy` and `arg: Type` parameters), [`strategy::Strategy`]
//! with `prop_map` / `prop_flat_map` / `boxed`, range and tuple strategies,
//! [`strategy::Just`], [`arbitrary::any`], [`prop_oneof!`],
//! [`collection::vec`], `prop_assert!` / `prop_assert_eq!`, and the
//! `PROPTEST_CASES` environment override (upstream's knob for running the
//! same suites at higher case counts, used by CI's scheduled deep job).
//!
//! Deliberately absent: shrinking. A failing case panics with the case
//! index; re-running reproduces it exactly, which is what the workspace's
//! CI workflow relies on.

/// Test-case configuration and the deterministic RNG driving generation.
pub mod test_runner {
    /// Mirror of proptest's config; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count actually run: the `PROPTEST_CASES` environment
        /// variable overrides the configured value when set (mirroring
        /// upstream proptest), so CI's scheduled deep-test job can crank
        /// every property suite up without touching the sources.
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => {
                    v.parse().unwrap_or_else(|_| panic!("PROPTEST_CASES must be a u32, got {v:?}"))
                }
                Err(_) => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64-seeded xoshiro256++; deterministic per (test, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Derive the RNG for one case of one named test.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut sm = h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next() | 1];
            TestRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn u64_below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift; bias is < 2^-64 * bound, irrelevant for tests.
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy simply draws a fresh value per case.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Generate a value, then a dependent strategy from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        /// Type-erase, e.g. for [`crate::prop_oneof!`] unions.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one alternative");
            Union { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.u64_below(self.choices.len() as u64) as usize;
            self.choices[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}", self.start, self.end
                    );
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    if span == 0 {
                        // Full u64 domain.
                        return rng.next_u64() as $t;
                    }
                    self.start.wrapping_add(rng.u64_below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.u64_below(span) as $t)
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let x = self.start + rng.f64_unit() * (self.end - self.start);
            if x < self.end {
                x
            } else {
                self.start
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn new_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let x = self.start + (rng.f64_unit() as f32) * (self.end - self.start);
            if x < self.end {
                x
            } else {
                self.start
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(A, B, C, D, E, F)(
        A, B, C, D, E, F, G
    )(A, B, C, D, E, F, G, H));
}

/// `any::<T>()` — full-domain generation for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: the workspace's properties treat f64 as
            // "some number", not "any bit pattern".
            rng.f64_unit() * 2e6 - 1e6
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// `Vec` of `element`-generated values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.u64_below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The glob-import surface test files expect.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert within a property; panics with the failing case's values via the
/// normal assert message (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $var:ident in $strat:expr) => {
        let $var = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);
    };
    ($rng:ident; $var:ident in $strat:expr, $($rest:tt)*) => {
        let $var = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $var:ident : $ty:ty) => {
        let $var = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $var:ident : $ty:ty, $($rest:tt)*) => {
        let $var = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.effective_cases() {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $crate::__proptest_bind!(__rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Define property tests. Each `#[test] fn name(x in strategy, y: Type)`
/// runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (usize, String)> {
        (1usize..5)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0u8..26, n..n + 1)))
            .prop_map(|(n, letters)| (n, letters.iter().map(|&b| (b'a' + b) as char).collect()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in -2i32..2, x in 0.25f64..0.75, s: u64) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2..2).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
            let _ = s; // any u64 is fine
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn oneof_covers_only_given_alternatives(
            x in prop_oneof![Just(1u32), Just(5u32), 10u32..12]
        ) {
            prop_assert!(x == 1 || x == 5 || x == 10 || x == 11);
        }

        #[test]
        fn flat_map_dependent_sizes(t in composite()) {
            let (n, s) = t;
            prop_assert_eq!(s.len(), n);
        }
    }

    #[test]
    fn proptest_cases_env_override() {
        // No set_var here: mutating the process-global variable would race
        // the parallel proptest!-macro tests in this binary, and CI's deep
        // job legitimately exports PROPTEST_CASES for the whole run — the
        // test must hold in both environments.
        let config = ProptestConfig::with_cases(7);
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => {
                // An external override (e.g. the scheduled deep job) wins.
                assert_eq!(config.effective_cases(), v.parse::<u32>().unwrap());
            }
            Err(_) => assert_eq!(config.effective_cases(), 7),
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let strat = (0u64..1000, 0.0f64..1.0);
        let run = || {
            let mut rng = crate::test_runner::TestRng::for_case("fixed::name", 3);
            (0..10).map(|_| strat.new_value(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
