//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op [`Serialize`]/[`Deserialize`] derives from the
//! sibling `serde_derive` stand-in. The dsbn workspace only ever *derives*
//! these — no code path bounds on serde traits or calls a serializer — so
//! empty expansions keep every annotation compiling without the real
//! serde/syn/quote dependency tree, which is unreachable offline.
//!
//! When real serialization lands (e.g. a persistence or RPC layer), replace
//! this crate with the genuine `serde` in the workspace manifests; the
//! source-level annotations are already in place.

pub use serde_derive::{Deserialize, Serialize};
