//! Offline stand-in for the `arc-swap` crate.
//!
//! Provides [`ArcSwap`]: a shared slot holding an `Arc<T>` that writers
//! replace atomically ([`store`](ArcSwap::store) / [`swap`](ArcSwap::swap))
//! and readers load without taking any lock ([`load`](ArcSwap::load) /
//! [`load_full`](ArcSwap::load_full)) — the RCU publish/subscribe primitive
//! behind the dsbn query-serving layer (one writer minting CPT snapshots at
//! epoch settlements, N reader threads loading the current snapshot on
//! every query). Scope is deliberately minimal: just the swappable-`Arc`
//! core of the upstream crate, none of its `Cache`/`ArcSwapAny`/weak-ref
//! surface. Semantics match upstream for this workload: readers always
//! observe a fully-constructed value, writers never free a value a reader
//! is still borrowing, and publishes become visible to subsequent loads in
//! store order.
//!
//! # Implementation
//!
//! A classic hazard-pointer scheme, sized for the runtime's worker counts:
//!
//! - the current value lives in an `AtomicPtr<T>` (from `Arc::into_raw`);
//! - each instance carries a fixed array of *hazard slots*; a reader
//!   claims a free slot, publishes the pointer it is about to borrow,
//!   re-checks that the pointer is still current (a `SeqCst` load ordered
//!   after the publish), and only then bumps the refcount via a transient
//!   `Arc::from_raw` + `clone` + `forget`;
//! - writers are serialized by a mutex; a writer swaps the current
//!   pointer, then spins until no hazard slot still names the *old*
//!   pointer before dropping the slot's reference to it.
//!
//! The re-check makes a late hazard publish safe: if the writer's swap is
//! ordered before the reader's re-check, the reader observes the new
//! pointer, abandons the stale hazard and retries; if it is ordered after,
//! the writer's hazard scan is ordered after the reader's publish and
//! waits for the reader to finish cloning. Address reuse (ABA) is benign:
//! a recycled address that passes the re-check *is* the live current
//! value. If every hazard slot is transiently busy, readers fall back to
//! cloning under the writer mutex, which is always sound (no store can
//! retire the pointer mid-clone) — correctness never depends on the slot
//! count, only the lock-free fast path does.

use std::ops::Deref;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Hazard slots per instance. More than the runtime's reader-thread count;
/// overflow only costs the fallback lock, never correctness.
const HAZARD_SLOTS: usize = 64;

/// Round-robin seed so threads start their slot scan at different offsets
/// instead of all contending on slot 0.
static SLOT_SEED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT_START: usize = SLOT_SEED.fetch_add(1, SeqCst) % HAZARD_SLOTS;
}

/// An atomically swappable `Arc<T>`: lock-free reads, serialized writes.
pub struct ArcSwap<T> {
    current: AtomicPtr<T>,
    hazards: Box<[AtomicPtr<T>; HAZARD_SLOTS]>,
    writer: Mutex<()>,
}

// An `ArcSwap` hands `Arc<T>` clones to other threads, so it needs exactly
// the bounds that make `Arc<T>` itself `Send + Sync`.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

/// A borrowed load. In this stand-in it owns a full `Arc` clone (upstream's
/// `Guard` is cheaper); deref to reach the value, [`Guard::into_inner`] to
/// keep it.
pub struct Guard<T>(Arc<T>);

impl<T> Deref for Guard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> Guard<T> {
    /// The loaded `Arc` itself.
    pub fn into_inner(self) -> Arc<T> {
        self.0
    }
}

impl<T> ArcSwap<T> {
    /// A new slot initially holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            current: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            hazards: Box::new([(); HAZARD_SLOTS].map(|()| AtomicPtr::new(ptr::null_mut()))),
            writer: Mutex::new(()),
        }
    }

    /// Convenience: wrap `value` in a fresh `Arc` first.
    pub fn from_pointee(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// Load the current value without locking (hazard-pointer fast path).
    pub fn load(&self) -> Guard<T> {
        Guard(self.load_full())
    }

    /// Load the current value as an owned `Arc`.
    pub fn load_full(&self) -> Arc<T> {
        let start = SLOT_START.with(|s| *s);
        loop {
            let p = self.current.load(SeqCst);
            // Claim a free hazard slot and publish `p` in it.
            let mut claimed = None;
            for i in 0..HAZARD_SLOTS {
                let slot = &self.hazards[(start + i) % HAZARD_SLOTS];
                if slot.compare_exchange(ptr::null_mut(), p, SeqCst, SeqCst).is_ok() {
                    claimed = Some(slot);
                    break;
                }
            }
            let Some(slot) = claimed else {
                // Every slot transiently busy: clone under the writer lock,
                // which blocks retirement entirely.
                let _g = self.writer.lock().unwrap();
                let p = self.current.load(SeqCst);
                return unsafe { clone_raw(p) };
            };
            // Re-check: if `p` is still current, the publish above is
            // ordered before any retirement scan for `p`, so the refcount
            // bump below races with nothing.
            if self.current.load(SeqCst) == p {
                let arc = unsafe { clone_raw(p) };
                slot.store(ptr::null_mut(), SeqCst);
                return arc;
            }
            // A writer beat us; drop the stale hazard and retry.
            slot.store(ptr::null_mut(), SeqCst);
        }
    }

    /// Publish `new`, dropping the slot's reference to the previous value.
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }

    /// Publish `new` and return the previous value.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let newp = Arc::into_raw(new) as *mut T;
        let _g = self.writer.lock().unwrap();
        let old = self.current.swap(newp, SeqCst);
        if old == newp {
            // Same allocation stored twice: `into_raw` took a reference we
            // must give back, but no hazard wait is needed.
            return unsafe { Arc::from_raw(old) };
        }
        // Wait out readers that published `old` before the swap above.
        for slot in self.hazards.iter() {
            while slot.load(SeqCst) == old {
                std::hint::spin_loop();
            }
        }
        unsafe { Arc::from_raw(old) }
    }
}

/// Bump the refcount behind `p` and return the new `Arc`, leaving the
/// slot's own reference in place. Caller must guarantee `p` came from
/// `Arc::into_raw` and cannot be retired concurrently.
unsafe fn clone_raw<T>(p: *const T) -> Arc<T> {
    let transient = Arc::from_raw(p);
    let out = transient.clone();
    std::mem::forget(transient);
    out
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // Exclusive access: no readers or writers remain.
        let p = *self.current.get_mut();
        drop(unsafe { Arc::from_raw(p) });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcSwap").field(&*self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn load_returns_stored_value() {
        let s = ArcSwap::from_pointee(41);
        assert_eq!(*s.load(), 41);
        s.store(Arc::new(42));
        assert_eq!(*s.load_full(), 42);
        let old = s.swap(Arc::new(43));
        assert_eq!(*old, 42);
        assert_eq!(*s.load(), 43);
    }

    #[test]
    fn guard_into_inner_keeps_value_alive_across_store() {
        let s = ArcSwap::from_pointee(String::from("first"));
        let held = s.load().into_inner();
        s.store(Arc::new(String::from("second")));
        assert_eq!(*held, "first");
        assert_eq!(*s.load(), "second");
    }

    #[test]
    fn store_same_arc_twice_is_fine() {
        let v = Arc::new(7);
        let s = ArcSwap::new(v.clone());
        s.store(v.clone());
        assert_eq!(*s.load(), 7);
        drop(s);
        assert_eq!(Arc::strong_count(&v), 1);
    }

    /// Every allocation pushed through the slot is dropped exactly once.
    #[test]
    fn no_leaks_or_double_drops() {
        static LIVE: AtomicU64 = AtomicU64::new(0);
        struct Counted;
        impl Counted {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Counted
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let s = ArcSwap::from_pointee(Counted::new());
        for _ in 0..100 {
            let g = s.load();
            s.store(Arc::new(Counted::new()));
            drop(g);
        }
        drop(s);
        assert_eq!(LIVE.load(Ordering::SeqCst), 0);
    }

    /// Publish ordering: with one writer storing increasing sequence
    /// numbers, every reader sees a non-decreasing sequence — a load never
    /// observes an older publish after a newer one.
    #[test]
    fn loads_observe_publishes_in_store_order() {
        let s = Arc::new(ArcSwap::from_pointee(0u64));
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut loads = 0u64;
                    // Check `stop` *after* loading so each reader samples the
                    // sequence at least once, even when the writer finishes
                    // before this thread is first scheduled (single-CPU
                    // release runs).
                    loop {
                        let v = *s.load();
                        assert!(v >= last, "saw {v} after {last}");
                        last = v;
                        loads += 1;
                        if stop.load(Ordering::SeqCst) != 0 {
                            break;
                        }
                    }
                    loads
                })
            })
            .collect();
        for i in 1..=20_000u64 {
            s.store(Arc::new(i));
        }
        stop.store(1, Ordering::SeqCst);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        assert_eq!(*s.load(), 20_000);
    }

    /// Hammer the slot from more threads than there are hazard slots, so
    /// the under-lock fallback path gets exercised alongside the fast path.
    #[test]
    fn concurrent_load_store_stress() {
        let s = Arc::new(ArcSwap::from_pointee(vec![0u64; 16]));
        let handles: Vec<_> = (0..HAZARD_SLOTS + 8)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        if t % 8 == 0 {
                            s.store(Arc::new(vec![i; 16]));
                        } else {
                            let v = s.load_full();
                            // A load must never expose a half-built value.
                            assert!(v.iter().all(|&x| x == v[0]));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
