//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! purely as forward-looking wire-format hooks; nothing bounds on the serde
//! traits yet. With no network access to fetch real serde (and its
//! syn/quote dependency tree), these derives expand to nothing, and the
//! `serde` façade crate's attribute support (`#[serde(...)]`) is accepted
//! and ignored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
