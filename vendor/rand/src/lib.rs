//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements exactly the API surface the dsbn workspace uses:
//!
//! - [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`;
//! - [`SeedableRng`] with `seed_from_u64` / `from_seed`;
//! - [`rngs::StdRng`] and [`rngs::SmallRng`], both xoshiro256++ seeded via
//!   SplitMix64 (deterministic across platforms and runs).
//!
//! Not a cryptographic RNG and not statistically identical to upstream
//! `rand` — seeds produce different streams than the real crate, but all
//! dsbn tests derive their expectations from these streams, not upstream's.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from their "standard" distribution
/// (`rand`'s `Standard`): `f64` in `[0, 1)`, integers over their full range,
/// `bool` fair.
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be drawn uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low < high);
                let span = (high as u64).wrapping_sub(low as u64);
                // Debiased multiply-shift (Lemire); span == 0 means the full
                // u64 range, where raw bits are already uniform.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let mut m = (rng.next_u64() as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let threshold = span.wrapping_neg() % span;
                    while lo < threshold {
                        m = (rng.next_u64() as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                low.wrapping_add((m >> 64) as u64 as $t)
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low < high);
                let span = (high as $u).wrapping_sub(low as $u);
                let off = <u64 as SampleUniform>::sample_range(0, span as u64, rng);
                low.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        debug_assert!(low < high);
        let u = f64::standard_sample(rng);
        let x = low + u * (high - low);
        // Guard against rounding up to the excluded endpoint.
        if x < high {
            x
        } else {
            low
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        debug_assert!(low < high);
        let u = f32::standard_sample(rng);
        let x = low + u * (high - low);
        if x < high {
            x
        } else {
            low
        }
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(self.start, self.end, rng)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range: empty range");
                if low == high {
                    return low;
                }
                if high < <$t>::MAX {
                    <$t>::sample_range(low, high + 1, rng)
                } else if low > <$t>::MIN {
                    <$t>::sample_range(low - 1, high, rng) + 1
                } else {
                    // Full domain.
                    StandardSample::standard_sample(rng)
                }
            }
        }
    )*};
}
impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A draw from the standard distribution of `T` (`f64` in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform draw from `range` (`low..high` or `low..=high`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (the upstream scheme).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// xoshiro256++ core shared by [`StdRng`] and [`SmallRng`].
    #[derive(Debug, Clone)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_state(s: [u64; 4]) -> Self {
            // An all-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                Xoshiro256 { s: [0x9e37_79b9, 0x7f4a_7c15, 0xdead_beef, 0xcafe_f00d] }
            } else {
                Xoshiro256 { s }
            }
        }
    }

    impl RngCore for Xoshiro256 {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    macro_rules! wrapper_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Debug, Clone)]
            pub struct $name(Xoshiro256);

            impl RngCore for $name {
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }

            impl SeedableRng for $name {
                type Seed = [u8; 32];

                fn from_seed(seed: Self::Seed) -> Self {
                    let mut s = [0u64; 4];
                    for (i, chunk) in seed.chunks(8).enumerate() {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(chunk);
                        s[i] = u64::from_le_bytes(b);
                    }
                    $name(Xoshiro256::from_state(s))
                }
            }
        };
    }

    wrapper_rng!(
        /// The workspace's default seeded RNG (xoshiro256++ here; upstream
        /// `rand` uses ChaCha12 — streams differ, determinism does not).
        StdRng
    );
    wrapper_rng!(
        /// Small fast RNG; identical core to [`StdRng`] in this stand-in but
        /// seeded with a distinct tweak so the two never accidentally share
        /// a stream for equal seeds.
        SmallRng
    );

    impl SmallRng {
        /// Extra constructor mirroring `rand::rngs::SmallRng::from_entropy`.
        pub fn from_entropy() -> Self {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
                .unwrap_or(0x1234_5678);
            <Self as SeedableRng>::seed_from_u64(nanos)
        }
    }

    impl StdRng {
        /// Extra constructor mirroring `rand::rngs::StdRng::from_entropy`.
        pub fn from_entropy() -> Self {
            let mut sm = SplitMix64(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0xabcd),
            );
            <Self as SeedableRng>::seed_from_u64(sm.next())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(0..7usize);
            assert!(x < 7);
            let y = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(3..=5u32);
            assert!((3..=5).contains(&z));
        }
    }

    #[test]
    fn standard_f64_in_unit_interval_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dyn(rng: &mut dyn super::RngCore) -> usize {
            use super::Rng;
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(takes_dyn(&mut rng) < 10);
    }
}
