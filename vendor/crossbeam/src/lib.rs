//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides [`channel`]: multi-producer multi-consumer channels with
//! cloneable senders *and* receivers, bounded (blocking send) and unbounded
//! flavors, plus a [`select!`] macro covering the two-`recv`-arm form the
//! dsbn cluster runtime uses. Built on `Mutex`/`Condvar`; `select!` polls
//! with a short parked backoff rather than crossbeam's registration lists —
//! semantically equivalent for the runtime's workload, slightly higher idle
//! latency.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled when an item arrives or all senders disconnect.
        not_empty: Condvar,
        /// Signalled when space frees up or all receivers disconnect.
        not_full: Condvar,
        capacity: Option<usize>,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; cloneable (MPMC: each message goes to one receiver).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The channel is disconnected (no receivers left); returns the message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// All senders disconnected and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a non-blocking receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Outcome of a bounded-time receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Channel with a maximum queue depth; `send` blocks when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap))
    }

    /// Channel with no depth limit; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    fn new_chan<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers so they can observe disconnection.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake blocked senders so they can observe disconnection.
                self.chan.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued (bounded channels may wait
        /// for space). Errors only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.chan.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline relative to now.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.chan.not_empty.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }

        /// Blocking iterator until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over received messages; ends on disconnection.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[doc(hidden)]
    pub enum SelectedTwo<A, B> {
        First(A),
        Second(B),
    }

    #[doc(hidden)]
    pub fn select_two<A, B>(
        rx_a: &Receiver<A>,
        rx_b: &Receiver<B>,
    ) -> SelectedTwo<Result<A, RecvError>, Result<B, RecvError>> {
        // Poll both with escalating backoff. Disconnection counts as ready
        // (with Err), matching crossbeam's semantics.
        let mut spins = 0u32;
        loop {
            match rx_a.try_recv() {
                Ok(v) => return SelectedTwo::First(Ok(v)),
                Err(TryRecvError::Disconnected) => return SelectedTwo::First(Err(RecvError)),
                Err(TryRecvError::Empty) => {}
            }
            match rx_b.try_recv() {
                Ok(v) => return SelectedTwo::Second(Ok(v)),
                Err(TryRecvError::Disconnected) => return SelectedTwo::Second(Err(RecvError)),
                Err(TryRecvError::Empty) => {}
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }

    // Make `crossbeam::channel::select!` resolve, as upstream does.
    pub use crate::select;
}

/// Block on two receive operations, running the arm of whichever is ready
/// first. Disconnected channels are immediately "ready" with `Err(_)`.
///
/// Supports the subset of crossbeam's grammar used in this workspace:
/// exactly two `recv(rx) -> pattern => body` arms. The arm bodies execute
/// *outside* any internal loop, so `break`/`continue` inside them bind to
/// the caller's enclosing loop, exactly as with upstream crossbeam.
#[macro_export]
macro_rules! select {
    (
        recv($rx_a:expr) -> $pat_a:pat => $body_a:expr,
        recv($rx_b:expr) -> $pat_b:pat => $body_b:expr $(,)?
    ) => {
        match $crate::channel::select_two(&$rx_a, &$rx_b) {
            $crate::channel::SelectedTwo::First($pat_a) => $body_a,
            $crate::channel::SelectedTwo::Second($pat_b) => $body_b,
        }
    };
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn unbounded_fifo_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // must block until a recv frees space
            "sent"
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(t.join().unwrap(), "sent");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn send_fails_when_no_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded::<u64>();
        let rx2 = rx.clone();
        let n = 10_000u64;
        let consumer =
            |rx: super::channel::Receiver<u64>| std::thread::spawn(move || rx.iter().sum::<u64>());
        let a = consumer(rx);
        let b = consumer(rx2);
        for i in 1..=n {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = a.join().unwrap() + b.join().unwrap();
        assert_eq!(total, n * (n + 1) / 2);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn try_recv_states() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn select_two_arms_and_break_binds_to_caller_loop() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (tx_b, rx_b) = unbounded::<&'static str>();
        tx_b.send("hello").unwrap();
        let mut got_b = None;
        let mut got_a = None;
        let mut rounds = 0;
        loop {
            rounds += 1;
            crate::select! {
                recv(rx_a) -> msg => match msg {
                    Ok(v) => { got_a = Some(v); break; }
                    Err(_) => break,
                },
                recv(rx_b) -> msg => match msg {
                    Ok(s) => {
                        got_b = Some(s);
                        tx_a.send(42).unwrap();
                    }
                    Err(_) => break,
                },
            }
            if rounds > 10 {
                panic!("select never progressed");
            }
        }
        assert_eq!(got_b, Some("hello"));
        assert_eq!(got_a, Some(42));
    }

    #[test]
    fn select_reports_disconnection() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (tx_b, rx_b) = unbounded::<u32>();
        drop(tx_a);
        let _keep = tx_b;
        let hit = crate::select! {
            recv(rx_a) -> msg => msg.is_err(),
            recv(rx_b) -> _msg => false,
        };
        assert!(hit, "disconnected channel must select with Err");
    }
}
